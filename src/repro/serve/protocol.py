"""Length-prefixed frame protocol for the SLS serving front-end.

One frame = a 5-byte header (codec id + big-endian payload length)
followed by the encoded payload::

    +-------+-------------------+----------------------+
    | codec |   payload bytes   |       payload        |
    | u8    |   u32 big-endian  |  json / msgpack body |
    +-------+-------------------+----------------------+

JSON is the always-available codec (floats survive a JSON round trip
bit-exactly via shortest-repr encoding, which is what lets the serving
path keep the repo's bit-identity guarantees over the wire); msgpack is
negotiated per frame when the optional dependency is importable on both
sides — the codec byte travels with every frame, so a JSON client can
talk to a msgpack-capable server without handshaking.

Message schemas (plain dicts on the wire, typed dataclasses in-process):

* request — ``{"id": int, "op": "sls", "table": str, "rows": [int],
  "weights": [int] | null}``; ``op: "ping"`` / ``op: "heartbeat"``
  carry no query fields (heartbeat answers with liveness detail).
* response — ``{"id": int, "status": "ok" | "error" | "overloaded" |
  "shutting_down", "values": [float] | null, "error": str | null,
  "kind": str | null}`` where ``kind`` names the server-side exception
  class (``VerificationError``, ``ConfigurationError``, ...) so the
  client re-raises the typed error from :mod:`repro.errors`.
* node request/response — the cluster tier's control+data plane over
  the same framing (:class:`NodeRequest` / :class:`NodeResponse`):
  ``op`` is one of :data:`NODE_OPS` and everything op-specific travels
  in a free-form ``payload`` dict (shard assignments, partial-sum
  shares, heartbeat liveness detail).

Liveness: :func:`resolve_heartbeat_timeout` is the one place the
dead-peer deadline comes from (``SECNDP_HEARTBEAT_TIMEOUT`` in the
environment, mirroring ``SECNDP_TASK_TIMEOUT``), so the single-node
client and the cluster tier time out reads identically instead of
hanging on a dead peer.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "MAX_FRAME_BYTES",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_OVERLOADED",
    "STATUS_SHUTTING_DOWN",
    "RESPONSE_STATUSES",
    "NODE_OPS",
    "ENV_HEARTBEAT_TIMEOUT",
    "DEFAULT_HEARTBEAT_TIMEOUT_S",
    "FrameError",
    "SlsRequest",
    "SlsResponse",
    "NodeRequest",
    "NodeResponse",
    "available_codecs",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "resolve_heartbeat_timeout",
]

CODEC_JSON = 1
CODEC_MSGPACK = 2

#: Hard cap on a single frame's payload; a length prefix beyond this is
#: treated as a protocol violation, not an allocation request.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">BI")

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_OVERLOADED = "overloaded"
STATUS_SHUTTING_DOWN = "shutting_down"
RESPONSE_STATUSES = (
    STATUS_OK,
    STATUS_ERROR,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
)

#: Cluster-tier frame ops (NodeRequest.op vocabulary): shard assignment
#: ships a table replica + owned row range to a node, partial_sum asks
#: for one shard's PartialSumShare over masked sub-queries, heartbeat
#: probes liveness, shutdown drains the node.
NODE_OPS = ("shard_assign", "partial_sum", "heartbeat", "shutdown")

ENV_HEARTBEAT_TIMEOUT = "SECNDP_HEARTBEAT_TIMEOUT"

#: Default liveness deadline for heartbeats and cluster dispatches; a
#: peer that does not answer within this window is treated as dead or
#: partitioned rather than waited on forever.
DEFAULT_HEARTBEAT_TIMEOUT_S = 5.0


def resolve_heartbeat_timeout(value: Optional[float] = None) -> float:
    """The liveness deadline in seconds (explicit > env > default).

    Mirrors the ``SECNDP_TASK_TIMEOUT`` pattern of the parallel engine:
    an explicit argument wins, otherwise ``SECNDP_HEARTBEAT_TIMEOUT``
    from the environment, otherwise :data:`DEFAULT_HEARTBEAT_TIMEOUT_S`.
    """
    if value is not None:
        timeout = float(value)
    else:
        raw = os.environ.get(ENV_HEARTBEAT_TIMEOUT, "").strip()
        try:
            timeout = float(raw) if raw else DEFAULT_HEARTBEAT_TIMEOUT_S
        except ValueError:
            raise ConfigurationError(
                f"{ENV_HEARTBEAT_TIMEOUT}={raw!r} is not a number"
            ) from None
    if timeout <= 0:
        raise ConfigurationError(
            f"heartbeat timeout must be positive, got {timeout}"
        )
    return timeout

try:  # optional dependency; JSON is the portable contract
    import msgpack as _msgpack
except ImportError:  # pragma: no cover - exercised on hosts with msgpack
    _msgpack = None


class FrameError(ConfigurationError):
    """A malformed, oversized or unsupported frame."""


def available_codecs() -> Tuple[str, ...]:
    """Codec names this process can encode/decode."""
    return ("json", "msgpack") if _msgpack is not None else ("json",)


def resolve_codec(name: str) -> int:
    if name == "json":
        return CODEC_JSON
    if name == "msgpack":
        if _msgpack is None:
            raise ConfigurationError(
                "codec 'msgpack' requested but msgpack is not installed; "
                "use 'json' or install msgpack"
            )
        return CODEC_MSGPACK
    raise ConfigurationError(
        f"unknown frame codec {name!r} (choose from: json, msgpack)"
    )


@dataclass(frozen=True)
class SlsRequest:
    """One client query (or control message) as it crosses the wire."""

    id: int
    op: str = "sls"
    table: Optional[str] = None
    rows: Tuple[int, ...] = ()
    weights: Optional[Tuple[int, ...]] = None

    def to_wire(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "op": self.op,
            "table": self.table,
            "rows": list(self.rows),
            "weights": None if self.weights is None else list(self.weights),
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "SlsRequest":
        if not isinstance(obj, dict):
            raise FrameError(f"request payload must be a dict, got {type(obj).__name__}")
        op = obj.get("op", "sls")
        if op not in ("sls", "ping", "heartbeat"):
            raise FrameError(f"unknown request op {op!r}")
        weights = obj.get("weights")
        return cls(
            id=int(obj.get("id", 0)),
            op=op,
            table=obj.get("table"),
            rows=tuple(int(r) for r in obj.get("rows") or ()),
            weights=None if weights is None else tuple(int(w) for w in weights),
        )


@dataclass(frozen=True)
class SlsResponse:
    """One server answer; ``values`` only on ``status == "ok"``."""

    id: int
    status: str
    values: Optional[Tuple[float, ...]] = None
    error: Optional[str] = None
    kind: Optional[str] = None
    #: scheduler detail for observability ("batch", "scatter", ...)
    via: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise FrameError(f"unknown response status {self.status!r}")

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "values": None if self.values is None else list(self.values),
            "error": self.error,
            "kind": self.kind,
            "via": self.via,
        }
        if self.detail:
            wire["detail"] = dict(self.detail)
        return wire

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "SlsResponse":
        if not isinstance(obj, dict):
            raise FrameError(f"response payload must be a dict, got {type(obj).__name__}")
        values = obj.get("values")
        return cls(
            id=int(obj.get("id", 0)),
            status=str(obj.get("status", "")),
            values=None if values is None else tuple(float(v) for v in values),
            error=obj.get("error"),
            kind=obj.get("kind"),
            via=obj.get("via"),
            detail=dict(obj.get("detail") or {}),
        )


@dataclass(frozen=True)
class NodeRequest:
    """One cluster-tier control/data message (coordinator -> node).

    Same framing as :class:`SlsRequest`; ``op`` comes from
    :data:`NODE_OPS` and everything op-specific (serialized tables,
    masked sub-queries, fault directives) travels in ``payload`` so the
    frame vocabulary stays closed while the cluster codec evolves.
    """

    id: int
    op: str
    table: Optional[str] = None
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in NODE_OPS:
            raise FrameError(f"unknown node op {self.op!r}")

    def to_wire(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "op": self.op,
            "table": self.table,
            "payload": self.payload,
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "NodeRequest":
        if not isinstance(obj, dict):
            raise FrameError(
                f"node request payload must be a dict, got {type(obj).__name__}"
            )
        return cls(
            id=int(obj.get("id", 0)),
            op=str(obj.get("op", "")),
            table=obj.get("table"),
            payload=dict(obj.get("payload") or {}),
        )


@dataclass(frozen=True)
class NodeResponse:
    """One node answer; op-specific results live in ``payload``."""

    id: int
    status: str
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    kind: Optional[str] = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise FrameError(f"unknown response status {self.status!r}")

    def to_wire(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "status": self.status,
            "payload": self.payload,
            "error": self.error,
            "kind": self.kind,
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "NodeResponse":
        if not isinstance(obj, dict):
            raise FrameError(
                f"node response payload must be a dict, got {type(obj).__name__}"
            )
        return cls(
            id=int(obj.get("id", 0)),
            status=str(obj.get("status", "")),
            payload=dict(obj.get("payload") or {}),
            error=obj.get("error"),
            kind=obj.get("kind"),
        )


# -- framing -------------------------------------------------------------------


def encode_frame(obj: Any, codec: int = CODEC_JSON) -> bytes:
    """One wire frame: header + encoded payload."""
    if codec == CODEC_JSON:
        payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    elif codec == CODEC_MSGPACK:
        if _msgpack is None:
            raise FrameError("msgpack codec requested but msgpack is not installed")
        payload = _msgpack.packb(obj, use_bin_type=True)
    else:
        raise FrameError(f"unknown codec id {codec}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(codec, len(payload)) + payload


def decode_payload(codec: int, payload: bytes) -> Any:
    if codec == CODEC_JSON:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise FrameError(f"bad JSON frame payload: {exc}") from exc
    if codec == CODEC_MSGPACK:
        if _msgpack is None:
            raise FrameError("received a msgpack frame but msgpack is not installed")
        try:
            return _msgpack.unpackb(payload, raw=False)
        except Exception as exc:  # msgpack raises a zoo of exception types
            raise FrameError(f"bad msgpack frame payload: {exc}") from exc
    raise FrameError(f"unknown codec id {codec}")


async def read_frame(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    A truncated header/payload (EOF mid-frame) or an oversized length
    prefix raises :class:`FrameError`.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        chunk = await reader.read(_HEADER.size - len(header))
        if not chunk:
            raise FrameError("connection closed mid-header")
        header += chunk
    codec, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_payload(codec, payload)


async def write_frame(
    writer: asyncio.StreamWriter, obj: Any, codec: int = CODEC_JSON
) -> None:
    writer.write(encode_frame(obj, codec))
    await writer.drain()


def error_response(
    request_id: int,
    exc: BaseException,
    status: str = STATUS_ERROR,
    via: Optional[str] = None,
) -> SlsResponse:
    """Map a server-side exception to a typed wire response."""
    return SlsResponse(
        id=request_id,
        status=status,
        error=str(exc),
        kind=type(exc).__name__,
        via=via,
    )


def request_batch_rows(
    requests: Sequence[SlsRequest],
) -> Tuple[List[List[int]], List[Optional[List[int]]]]:
    """Split a request batch into the store's (rows, weights) lists."""
    rows_list = [list(req.rows) for req in requests]
    weights_list: List[Optional[List[int]]] = [
        None if req.weights is None else list(req.weights) for req in requests
    ]
    return rows_list, weights_list
