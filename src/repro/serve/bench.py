"""Serving throughput harness behind ``repro bench-serve`` and
``benchmarks/bench_serve.py``.

The committed metric of the serving front-end is **per-query QPS**: the
same 200-query Zipfian production trace served two ways —

1. *sequential* — one ``store.sls`` call per query, the per-request
   latency path every client would get without an ingress;
2. *coalesced* — every query submitted concurrently through the
   :class:`~repro.serve.scheduler.BatchScheduler` (in-process transport,
   so the number is scheduler+amortization, not loopback TCP), which
   collapses them into ``max_batch``-sized amortized ``sls_many`` calls.

Each leg runs on its *own* freshly built store (same key, same seed →
identical ciphertext) so neither inherits the other's warm OTP/tag
caches; results are asserted bit-identical element-for-element.

:func:`run_overload_scenario` is the admission-control acceptance
probe: a burst larger than the queue cap must produce typed
``overloaded`` responses (> 0) while the served requests' p99 stays
inside the configured SLO (burn rate <= 1).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Tuple

import numpy as np

from ..core.params import SecNDPParams
from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..workloads.secure_sls import SecureEmbeddingStore
from ..workloads.traces import production_trace
from .admission import AdmissionConfig
from .protocol import STATUS_OK, STATUS_OVERLOADED
from .scheduler import BatchScheduler
from .server import AsyncSlsClient

__all__ = ["run_serve_bench", "run_overload_scenario", "run_tcp_smoke"]

KEY = bytes(range(16))

#: Per-scale serving-bench shapes (mirrors benchmarks/bench_hotpaths.py:
#: smoke keeps the table small enough for CI, default is the committed
#: baseline, paper stresses the same trace on a bigger table).
SIZES: Dict[str, dict] = {
    "smoke": dict(n_rows=2_000, dim=64, pf_range=(40, 80), n_queries=200),
    "default": dict(n_rows=8_192, dim=64, pf_range=(60, 100), n_queries=200),
    "paper": dict(n_rows=16_384, dim=64, pf_range=(60, 100), n_queries=400),
}


def _build_store(n_rows: int, dim: int, seed: int) -> SecureEmbeddingStore:
    """One fresh store; same (key, seed) -> bit-identical ciphertext."""
    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(KEY, params), UntrustedNdpDevice(params), quantization="table"
    )
    rng = np.random.default_rng(seed)
    store.add_table("emb", rng.normal(size=(n_rows, dim)))
    return store


def _trace_queries(
    n_rows: int, n_queries: int, pf_range: Tuple[int, int], seed: int
) -> List[Tuple[List[int], List[int]]]:
    trace = production_trace(
        n_rows,
        n_queries,
        pf_range=pf_range,
        hot_fraction=0.05,
        hot_probability=0.9,
        seed=seed,
    )
    return [
        ([int(r) for r in ix], [int(w) for w in ws])
        for ix, ws in zip(trace.indices, trace.weights)
    ]


def _serve_sequential(store, queries) -> Tuple[float, np.ndarray]:
    out = np.empty((len(queries), store._tables["emb"].dim))
    t0 = time.perf_counter()
    for i, (rows, weights) in enumerate(queries):
        out[i] = store.sls("emb", rows, weights)
    return time.perf_counter() - t0, out


def _serve_coalesced(
    store, queries, max_batch: int
) -> Tuple[float, np.ndarray, Dict[str, float]]:
    scheduler = BatchScheduler(store, max_batch=max_batch)
    client = AsyncSlsClient.in_process(scheduler)

    async def drive():
        t0 = time.perf_counter()
        results = await asyncio.gather(
            *[client.sls("emb", rows, weights) for rows, weights in queries]
        )
        elapsed = time.perf_counter() - t0
        stats = scheduler.stats()
        await scheduler.close()
        return elapsed, np.asarray(results), stats

    return asyncio.run(drive())


def run_serve_bench(
    n_rows: int,
    dim: int,
    n_queries: int,
    pf_range: Tuple[int, int] = (60, 100),
    max_batch: int = 32,
    seed: int = 11,
) -> dict:
    """Sequential vs coalesced QPS on the Zipfian trace; bit-identity gated."""
    queries = _trace_queries(n_rows, n_queries, pf_range, seed)

    t_seq, out_seq = _serve_sequential(_build_store(n_rows, dim, seed), queries)
    t_coal, out_coal, stats = _serve_coalesced(
        _build_store(n_rows, dim, seed), queries, max_batch
    )
    bit_identical = bool(np.array_equal(out_seq, out_coal))
    assert bit_identical, "coalesced serving diverges from direct sls"

    qps_seq = len(queries) / t_seq
    qps_coal = len(queries) / t_coal
    return {
        "table_rows": n_rows,
        "dim": dim,
        "queries": len(queries),
        "pf_range": list(pf_range),
        "trace_hot_fraction": 0.05,
        "trace_hot_probability": 0.9,
        "max_batch": max_batch,
        "sequential_seconds": t_seq,
        "sequential_qps": qps_seq,
        "coalesced_seconds": t_coal,
        "coalesced_qps": qps_coal,
        "qps_speedup": qps_coal / qps_seq,
        "bit_identical": bit_identical,
        "batches": int(stats["batches"]),
        "mean_batch_fill": float(stats["mean_batch_fill"]),
        "dedupe_ratio": float(stats.get("dedupe_ratio", 1.0)),
    }


def run_tcp_smoke(
    n_rows: int = 1_024,
    dim: int = 32,
    n_queries: int = 64,
    n_clients: int = 4,
    workers: int = 0,
    seed: int = 11,
) -> dict:
    """Concurrent client load over real TCP frames, bit-identity gated.

    ``workers > 0`` attaches a :class:`ParallelSlsEngine` so coalesced
    batches shard across the pool (the CI smoke job runs this under
    ``SECNDP_WORKERS=2``); ``0`` serves in-process.
    """
    from ..parallel import ParallelSlsEngine
    from .server import SlsServer

    store = _build_store(n_rows, dim, seed)
    queries = _trace_queries(n_rows, n_queries, (8, 16), seed)
    expected = np.asarray(
        [store.sls("emb", rows, weights) for rows, weights in queries]
    )
    engine = ParallelSlsEngine(store, workers=workers) if workers > 0 else None

    async def drive():
        async with SlsServer(store, engine=engine, port=0) as server:
            clients = [
                await AsyncSlsClient.connect("127.0.0.1", server.port)
                for _ in range(n_clients)
            ]
            try:
                assert all(await asyncio.gather(*[c.ping() for c in clients]))
                t0 = time.perf_counter()
                results = await asyncio.gather(
                    *[
                        clients[i % n_clients].sls("emb", rows, weights)
                        for i, (rows, weights) in enumerate(queries)
                    ]
                )
                elapsed = time.perf_counter() - t0
            finally:
                for c in clients:
                    await c.close()
            return elapsed, np.asarray(results), server.stats()

    try:
        elapsed, results, stats = asyncio.run(drive())
    finally:
        if engine is not None:
            engine.close()
    bit_identical = bool(np.array_equal(results, expected))
    assert bit_identical, "TCP serving diverges from direct sls"
    return {
        "queries": len(queries),
        "clients": n_clients,
        "workers": int(engine.workers) if engine is not None else 0,
        "qps": len(queries) / elapsed,
        "batches": int(stats["batches"]),
        "bit_identical": bit_identical,
    }


def run_overload_scenario(
    n_rows: int = 512,
    dim: int = 16,
    burst: int = 100,
    max_queue: int = 8,
    slo: str = "serve.latency.p99 < 250ms @ 5%",
    seed: int = 11,
) -> dict:
    """Burst past the queue cap: shed must be typed, served p99 in SLO."""
    store = _build_store(n_rows, dim, seed)
    scheduler = BatchScheduler(
        store,
        max_batch=max_queue,
        admission=AdmissionConfig(slo=slo, max_queue=max_queue, eval_every=4),
    )
    client = AsyncSlsClient.in_process(scheduler)
    rng = np.random.default_rng(seed)
    bursts = [
        [int(r) for r in rng.integers(0, n_rows, size=8)] for _ in range(burst)
    ]

    async def drive():
        responses = await asyncio.gather(
            *[client.sls_response("emb", rows) for rows in bursts]
        )
        # Force a final evaluation over everything recorded so the burn
        # rate below reflects the whole burst, not the last eval window.
        scheduler.admission.evaluate()
        stats = scheduler.stats()
        await scheduler.close()
        return responses, stats

    responses, stats = asyncio.run(drive())
    served = sum(1 for r in responses if r.status == STATUS_OK)
    overloaded = sum(1 for r in responses if r.status == STATUS_OVERLOADED)
    spec = scheduler.admission.spec
    burn = float(stats["admission.burn_rate"])
    return {
        "burst": burst,
        "max_queue": max_queue,
        "slo": spec.raw,
        "served_ok": served,
        "overloaded": overloaded,
        "shed": int(stats["admission.shed"]),
        "burn_rate": burn,
        "p99_within_slo": bool(burn <= 1.0),
    }
