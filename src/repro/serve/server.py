"""`SlsServer` (asyncio TCP front-end) and `AsyncSlsClient`.

The server speaks the length-prefixed frame protocol of
:mod:`repro.serve.protocol` and feeds every query into one
:class:`~repro.serve.scheduler.BatchScheduler`, so requests from *all*
connections coalesce into the same amortized batches.  Connections are
pipelined: each frame is served by its own task and responses are
written as their batches complete (the ``id`` field correlates them),
which is what lets a single client drive enough concurrency to fill a
batch window.

The client has two transports with one API:

* ``await AsyncSlsClient.connect(host, port)`` — TCP; a background
  reader task dispatches responses to per-request futures, so any number
  of ``sls()`` calls can be in flight on one connection.
* ``AsyncSlsClient.in_process(scheduler)`` — no sockets; submits
  straight into a scheduler.  This is the test/bench transport: it keeps
  the scheduler semantics (admission, coalescing, typed errors) without
  measuring loopback TCP.

Typed failures map back to :mod:`repro.errors` classes client-side:
an ``overloaded`` response raises :class:`~repro.errors.OverloadedError`,
``shutting_down`` raises :class:`~repro.errors.ServerClosedError`, and
``error`` responses re-raise the class named by ``kind``
(:class:`~repro.errors.VerificationError`, ...).
"""

from __future__ import annotations

import asyncio
import signal
from typing import Dict, Optional, Sequence, Set

import numpy as np

from .. import errors, obs
from ..errors import (
    ConfigurationError,
    OverloadedError,
    SecNDPError,
    ServerClosedError,
)
from .protocol import (
    CODEC_JSON,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
    FrameError,
    SlsRequest,
    SlsResponse,
    error_response,
    read_frame,
    resolve_codec,
    resolve_heartbeat_timeout,
    write_frame,
)
from .scheduler import DEFAULT_MAX_BATCH, BatchScheduler

__all__ = ["SlsServer", "AsyncSlsClient"]


class SlsServer:
    """Serve a store's SLS queries over TCP through the batching scheduler.

    Parameters mirror :class:`~repro.serve.scheduler.BatchScheduler`;
    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  Use ``async with`` (or :meth:`start` /
    :meth:`close`) so the listener, the scheduler's offload thread and
    any attached engine pool are released deterministically.
    """

    def __init__(
        self,
        store,
        engine=None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        admission=None,
        codec: str = "json",
    ):
        self.scheduler = BatchScheduler(
            store, engine=engine, max_batch=max_batch, admission=admission
        )
        self.host = host
        self.port = port
        self._codec = resolve_codec(codec)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "SlsServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            return self
        if self._closed:
            raise ConfigurationError("server is closed")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.inc("serve.server.starts")
        obs.emit_event(obs.SERVE_START, host=self.host, port=self.port)
        return self

    async def close(self) -> None:
        """Drain and stop (idempotent).

        New connections are refused, new requests on live connections get
        a typed ``shutting_down`` response, in-flight batches complete
        and their responses are written, then the scheduler's executor
        (and nothing else — an attached engine stays owned by the
        caller) is released.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Scheduler drain resolves every pending future; the per-request
        # tasks then just have responses left to write.
        await self.scheduler.close()
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        obs.emit_event(obs.SERVE_DRAIN, host=self.host, port=self.port)

    async def __aenter__(self) -> "SlsServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Run until SIGINT/SIGTERM, then drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loops: rely on cancellation/close()
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs.inc("serve.connections")
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    obj = await read_frame(reader)
                except FrameError as exc:
                    # Protocol violation: answer (best-effort) and drop
                    # the connection — framing is unrecoverable.
                    obs.inc("serve.frame_errors")
                    await self._safe_write(
                        writer, write_lock, error_response(0, exc)
                    )
                    break
                if obj is None:  # clean EOF
                    break
                try:
                    request = SlsRequest.from_wire(obj)
                except FrameError as exc:
                    rid = obj.get("id", 0) if isinstance(obj, dict) else 0
                    obs.inc("serve.frame_errors")
                    await self._safe_write(
                        writer, write_lock, error_response(int(rid), exc)
                    )
                    continue
                # One task per frame: the read loop immediately returns
                # to the socket, so a single pipelining client can have
                # a full batch window in flight.
                task = asyncio.ensure_future(
                    self._serve_one(request, writer, write_lock)
                )
                tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_one(
        self,
        request: SlsRequest,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if request.op in ("ping", "heartbeat"):
            # Liveness probes bypass the scheduler entirely: a heartbeat
            # must answer even when admission control is shedding work.
            response = SlsResponse(id=request.id, status=STATUS_OK, via=request.op)
        else:
            response = await self.scheduler.submit(request)
        await self._safe_write(writer, write_lock, response)

    async def _safe_write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: SlsResponse,
    ) -> None:
        try:
            async with write_lock:
                await write_frame(writer, response.to_wire(), self._codec)
        except (ConnectionError, OSError):
            obs.inc("serve.write_errors")

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return self.scheduler.stats()


def _raise_for_response(response: SlsResponse) -> SlsResponse:
    """Map a non-ok response to its typed :mod:`repro.errors` exception."""
    if response.status == STATUS_OK:
        return response
    if response.status == STATUS_OVERLOADED:
        raise OverloadedError(response.error or "request shed by admission control")
    if response.status == STATUS_SHUTTING_DOWN:
        raise ServerClosedError(response.error or "server is draining")
    exc_cls = getattr(errors, response.kind or "", None)
    if isinstance(exc_cls, type) and issubclass(exc_cls, SecNDPError):
        raise exc_cls(response.error or response.kind)
    raise SecNDPError(response.error or f"server error ({response.kind})")


class AsyncSlsClient:
    """One API over two transports: TCP frames or an in-process scheduler.

    The TCP transport reconnects transparently: when the connection
    drops, the background reader dials the server again with capped
    exponential backoff (``backoff_base_s * 2**attempt``, clamped to
    ``backoff_cap_s``) and re-sends every request that never got a
    response frame — SLS reads and liveness probes are idempotent, so a
    duplicate submission is safe.  Only after ``max_reconnects``
    consecutive failed dials do the in-flight futures fail with
    :class:`~repro.errors.ServerClosedError`.
    """

    def __init__(self):
        self._scheduler: Optional[BatchScheduler] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._codec = CODEC_JSON
        self._pending: Dict[int, "tuple[asyncio.Future[SlsResponse], SlsRequest]"] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._next_id = 0
        self._closed = False
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._allow_reconnect = True
        self._max_reconnects = 4
        self._backoff_base_s = 0.05
        self._backoff_cap_s = 1.0
        self._conn_gen = 0
        self._reconnect_lock: Optional[asyncio.Lock] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        codec: str = "json",
        reconnect: bool = True,
        max_reconnects: int = 4,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
    ) -> "AsyncSlsClient":
        client = cls()
        client._codec = resolve_codec(codec)
        client._host = host
        client._port = port
        client._allow_reconnect = bool(reconnect)
        client._max_reconnects = int(max_reconnects)
        client._backoff_base_s = float(backoff_base_s)
        client._backoff_cap_s = float(backoff_cap_s)
        client._reconnect_lock = asyncio.Lock()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    @classmethod
    def in_process(cls, scheduler: BatchScheduler) -> "AsyncSlsClient":
        client = cls()
        client._scheduler = scheduler
        return client

    # -- request plumbing ------------------------------------------------------

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def _read_loop(self) -> None:
        while True:
            assert self._reader is not None
            generation = self._conn_gen
            error: Optional[BaseException] = None
            try:
                while True:
                    obj = await read_frame(self._reader)
                    if obj is None:
                        break
                    response = SlsResponse.from_wire(obj)
                    entry = self._pending.pop(response.id, None)
                    if entry is not None and not entry[0].done():
                        entry[0].set_result(response)
            except (FrameError, ConnectionError, OSError) as exc:
                error = exc
            # Reconnect even with nothing in flight: the loop must stay
            # alive to read responses for requests sent after the drop.
            if self._closed or not self._allow_reconnect:
                break
            if not await self._reconnect(generation):
                break
        # Anything still pending will never be answered.
        for future, _request in self._pending.values():
            if not future.done():
                future.set_exception(
                    ServerClosedError(
                        f"connection lost before a response arrived: {error}"
                        if error
                        else "connection closed before a response arrived"
                    )
                )
        self._pending.clear()

    async def _reconnect(self, generation: int) -> bool:
        """Dial the server again and re-send unanswered requests.

        Serialized through ``_reconnect_lock`` so the read loop and a
        writer that hit a send error never race; if another path already
        replaced the connection (``generation`` is stale) this is a
        no-op success.
        """
        assert self._reconnect_lock is not None
        async with self._reconnect_lock:
            if self._closed:
                return False
            if self._conn_gen != generation:
                return True  # someone else already reconnected (and re-sent)
            assert self._host is not None and self._port is not None
            for attempt in range(self._max_reconnects):
                delay = min(self._backoff_base_s * (2**attempt), self._backoff_cap_s)
                if delay > 0:
                    await asyncio.sleep(delay)
                if self._closed:  # close() raced the backoff sleep
                    return False
                try:
                    reader, writer = await asyncio.open_connection(
                        self._host, self._port
                    )
                except (ConnectionError, OSError):
                    obs.inc("serve.client.reconnect_failures")
                    continue
                old_writer = self._writer
                self._reader, self._writer = reader, writer
                self._conn_gen += 1
                if old_writer is not None:
                    old_writer.close()
                obs.inc("serve.client.reconnects")
                try:
                    # Idempotent re-send: these requests were in flight
                    # when the connection died and got no response frame.
                    for _rid, (_future, request) in sorted(self._pending.items()):
                        await write_frame(writer, request.to_wire(), self._codec)
                        obs.inc("serve.client.resends")
                except (ConnectionError, OSError):
                    obs.inc("serve.client.reconnect_failures")
                    continue  # fresh connection died too; dial again
                # A write-path reconnect may find the read loop already
                # exited (it gave up after max_reconnects); revive it so
                # the re-sent requests get their responses read.
                if self._reader_task is not None and self._reader_task.done():
                    self._reader_task = asyncio.ensure_future(self._read_loop())
                return True
            return False

    async def request(self, request: SlsRequest) -> SlsResponse:
        """Send one request; return the raw typed response (no raising)."""
        if self._closed:
            raise ConfigurationError("client is closed")
        if self._scheduler is not None:
            if request.op in ("ping", "heartbeat"):
                return SlsResponse(id=request.id, status=STATUS_OK, via=request.op)
            return await self._scheduler.submit(request)
        if self._writer is None:
            raise ConfigurationError("client is not connected")
        future: "asyncio.Future[SlsResponse]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request.id] = (future, request)
        try:
            await write_frame(self._writer, request.to_wire(), self._codec)
        except (ConnectionError, OSError) as exc:
            sent = False
            if self._allow_reconnect and await self._reconnect(self._conn_gen):
                try:
                    # The reconnect sweep may have raced our ``_pending``
                    # insert; send again ourselves — duplicates are
                    # idempotent and the second response id is dropped.
                    await write_frame(self._writer, request.to_wire(), self._codec)
                    sent = True
                except (ConnectionError, OSError):
                    pass
            if not sent:
                self._pending.pop(request.id, None)
                raise ServerClosedError(f"connection lost: {exc}") from exc
        return await future

    # -- public API ------------------------------------------------------------

    async def sls(
        self,
        table: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """One verified SLS query; raises the typed error on failure."""
        request = SlsRequest(
            id=self._new_id(),
            op="sls",
            table=table,
            rows=tuple(int(r) for r in rows),
            weights=None if weights is None else tuple(int(w) for w in weights),
        )
        response = _raise_for_response(await self.request(request))
        return np.asarray(response.values, dtype=np.float64)

    async def sls_response(
        self,
        table: str,
        rows: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> SlsResponse:
        """Like :meth:`sls` but returns the typed response instead of raising."""
        return await self.request(
            SlsRequest(
                id=self._new_id(),
                op="sls",
                table=table,
                rows=tuple(int(r) for r in rows),
                weights=None if weights is None else tuple(int(w) for w in weights),
            )
        )

    async def ping(self, timeout: Optional[float] = None) -> bool:
        """Round-trip a ping frame; ``timeout`` (seconds) bounds the wait."""
        return await self._probe("ping", timeout)

    async def heartbeat(self, timeout: Optional[float] = None) -> bool:
        """Liveness probe with a deadline.

        Unlike :meth:`ping`, a missing ``timeout`` falls back to
        ``SECNDP_HEARTBEAT_TIMEOUT`` (default
        :data:`~repro.serve.protocol.DEFAULT_HEARTBEAT_TIMEOUT_S`), so a
        dead or partitioned peer yields ``False`` instead of a hung read.
        """
        return await self._probe("heartbeat", resolve_heartbeat_timeout(timeout))

    async def _probe(self, op: str, timeout: Optional[float]) -> bool:
        request = SlsRequest(id=self._new_id(), op=op)
        try:
            if timeout is None:
                response = await self.request(request)
            else:
                response = await asyncio.wait_for(self.request(request), timeout)
        except (SecNDPError, asyncio.TimeoutError):
            self._pending.pop(request.id, None)
            obs.inc(f"serve.client.{op}_failures")
            return False
        return response.status == STATUS_OK

    async def close(self) -> None:
        """Close the transport (the scheduler/server is not ours to stop)."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer = None
        if self._reader_task is not None:
            # Cancel rather than await: the loop may be mid-backoff in a
            # reconnect attempt, which would otherwise stall the close.
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None

    async def __aenter__(self) -> "AsyncSlsClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
