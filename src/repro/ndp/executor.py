"""Instruction-level execution of the SecNDP ISA (Sec. V-E walkthrough).

Binds the command formats of :mod:`repro.ndp.commands` to the functional
models: a :class:`SecNdpExecutor` owns one SecNDP engine (processor side)
and one NDP DIMM (memory side), translates a pooling query into the exact
instruction sequence of Sec. V-E -

    ArithEnc        (once per region: encrypt + tag + shard to ranks)
    SecNDPInst ...  (one per queried row: NDP command + OTP-PU replica)
    SecNDPLd        (per participating rank: share add + verification)

- and executes it.  This is the most hardware-faithful functional path
in the repository: register allocation, per-rank partial sums, and the
final cross-rank reduction all happen exactly as the micro-architecture
section describes, and integration tests check it against the plain
protocol-layer answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.encryption import EncryptedMatrix
from ..core.engine import SecNDPEngine
from ..core.protocol import SecNDPProcessor
from ..errors import ConfigurationError, VerificationError
from ..faults import hooks as fault_hooks
from .commands import NdpInst, NdpLd, NdpOp, SecNdpInst, SecNdpLd
from .dimm import NdpDimm

__all__ = ["SecNdpExecutor", "ShardedRegion"]


@dataclass
class ShardedRegion:
    """A region encrypted and striped round-robin across the DIMM ranks."""

    name: str
    encrypted: EncryptedMatrix
    n_ranks: int
    row_elems: int

    def rank_of_row(self, row: int) -> int:
        return row % self.n_ranks

    def local_offset(self, row: int) -> int:
        """Element offset of the row inside its rank shard."""
        return (row // self.n_ranks) * self.row_elems


class SecNdpExecutor:
    """Executes SecNDP instruction streams against engine + DIMM models."""

    def __init__(
        self,
        processor: SecNDPProcessor,
        n_ranks: int = 4,
        n_registers: int = 8,
    ):
        self.processor = processor
        self.n_ranks = n_ranks
        self.n_registers = n_registers
        self.engine = SecNDPEngine(
            processor.encryptor, processor.mac, n_registers=n_registers
        )
        self.dimm = NdpDimm(
            processor.ring, processor.field, n_ranks=n_ranks,
            n_registers=n_registers,
        )
        # One tag accumulator per (rank, register): the extended-register
        # design of Sec. V-D where NDP PUs carry a tag lane.
        self._regions: Dict[str, ShardedRegion] = {}
        self._instructions_executed = 0

    # -- ArithEnc ----------------------------------------------------------------

    def arith_enc(
        self,
        name: str,
        plaintext: np.ndarray,
        base_addr: int,
        with_tags: bool = True,
    ) -> ShardedRegion:
        """Encrypt a region and stripe its ciphertext across the ranks."""
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} already encrypted")
        encrypted = self.processor.encrypt_matrix(
            plaintext, base_addr, name, with_tags=with_tags
        )
        n_rows, row_elems = encrypted.ciphertext.shape
        region = ShardedRegion(
            name=name,
            encrypted=encrypted,
            n_ranks=self.n_ranks,
            row_elems=row_elems,
        )
        # Build each rank's shard: rows r with r % n_ranks == rank, packed.
        for rank in range(self.n_ranks):
            rows = list(range(rank, n_rows, self.n_ranks))
            shard = encrypted.ciphertext[rows].reshape(-1)
            self.dimm.load_shard(rank, shard)
            # Tag lanes live beside the data in the PU model.
        self._regions[name] = region
        return region

    # -- query execution -------------------------------------------------------------

    def weighted_sum(
        self,
        name: str,
        rows: Sequence[int],
        weights: Sequence[int],
        reg: int = 0,
        verify: bool = True,
    ) -> np.ndarray:
        """Run the full SecNDPInst / SecNDPLd sequence for one query."""
        region = self._regions[name]
        enc = region.encrypted
        if verify and enc.tags is None:
            raise VerificationError(f"region {name!r} encrypted without tags")
        ring = self.processor.ring
        weights_ring = [int(w) for w in ring.encode(np.asarray(weights))]

        # Issue one SecNDPInst per (row, weight); the NDP command reaches
        # the owning rank's PU, the SecNDP engine mirrors it on the OTP PU.
        self.engine.begin_query(reg)
        touched_ranks: List[int] = []
        rank_tag_acc: Dict[int, int] = {}
        for row, weight in zip(rows, weights_ring):
            rank = region.rank_of_row(int(row))
            inst = SecNdpInst(
                inner=NdpInst(
                    paddr=region.local_offset(int(row)),
                    op=NdpOp.MAC,
                    vsize=region.row_elems,
                    dsize=self.processor.params.element_bits,
                    imm=weight,
                    reg_id=reg,
                ),
                version=enc.version,
                verify=verify,
            )
            if rank not in touched_ranks:
                touched_ranks.append(rank)
                self.dimm.pus[rank].clear(reg)
            # Command-channel faults: a dropped SecNDPInst never reaches
            # the rank's PU, a duplicated one executes twice.  Either way
            # the OTP-PU replica diverges from the NDP share and Alg. 5
            # must catch it at SecNDPLd time.
            inj = fault_hooks.armed_injector()
            cmd_fault = inj.command_fault("executor.inst") if inj is not None else None
            if cmd_fault != "drop":
                # The NDP side executes the *unmodified* command.
                self.dimm.execute(rank, inst.to_ndp_command())
                if verify:
                    self.dimm.pus[rank].mac_tag(reg, weight, enc.tags[int(row)])
                if cmd_fault == "dup":
                    self.dimm.execute(rank, inst.to_ndp_command())
                    if verify:
                        self.dimm.pus[rank].mac_tag(reg, weight, enc.tags[int(row)])
            # The processor side replicates it on the OTP PU.
            self.engine.issue(reg, enc, int(row), weight)
            self._instructions_executed += 1

        # SecNDPLd per touched rank: collect partial ciphertext sums (and
        # tag partials); the final reduction is the engine's share add.
        ld = SecNdpLd(
            inner=NdpLd(reg_id=reg, vsize=region.row_elems,
                        dsize=self.processor.params.element_bits),
            verify=verify,
        )
        c_res = np.zeros(region.row_elems, dtype=ring.dtype)
        c_t_res = 0
        for rank in touched_ranks:
            c_res = ring.add(c_res, self.dimm.load(rank, ld.inner))
            if verify:
                c_t_res = self.processor.field.add(
                    c_t_res, self.dimm.pus[rank].load_tag(reg)
                )
        return self.engine.load_and_verify(
            reg, enc, c_res, c_t_res if verify else None
        )

    @property
    def instructions_executed(self) -> int:
        return self._instructions_executed
