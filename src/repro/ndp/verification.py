"""Verification-tag placement schemes (paper Sec. V-D, Figs. 9/10).

Where the per-row tags ``C_{T_i}`` live in memory determines how many
extra DRAM accesses and extra OTP blocks a verified query costs:

* **ENC_ONLY** - no tags at all (confidentiality only).
* **VER_COLOC** - tag stored immediately after its row.  Data+tag are
  fetched together, but the +16 B stride breaks cache-line alignment, so
  some rows spill into one more line than unprotected data would need.
* **VER_SEP**   - tags in a dedicated region.  Every queried row costs one
  extra line fetch in a *different* row-buffer locality (more ACTs).
* **VER_ECC**   - tags ride in the ECC chip: zero extra accesses, but the
  scheme only works when the row is at least one full cache line (8 B of
  ECC per 64 B line; a 128-bit tag needs >= 2 data lines), so quantized
  (sub-line) rows cannot use it - exactly the paper's observation.

The scheme object answers two questions for the simulator: which lines a
row-read touches, and how many extra OTP blocks the SecNDP engine must
generate (one tag pad per row, Alg. 5 lines 11-13).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError

__all__ = ["TagScheme", "TagPlacement", "LINE_BYTES", "TAG_BYTES"]

LINE_BYTES = 64
#: 128-bit tags throughout the evaluation (Sec. VII-A).
TAG_BYTES = 16
#: ECC capacity: 8 bytes of ECC signal per 64-byte line (x8 ECC DIMM).
ECC_BYTES_PER_LINE = 8


class TagScheme(enum.Enum):
    ENC_ONLY = "enc_only"
    VER_COLOC = "ver_coloc"
    VER_SEP = "ver_sep"
    VER_ECC = "ver_ecc"

    @property
    def verified(self) -> bool:
        return self is not TagScheme.ENC_ONLY


@dataclass(frozen=True)
class TagPlacement:
    """Access-cost model for one (scheme, row geometry) combination."""

    scheme: TagScheme
    row_bytes: int
    tag_bytes: int = TAG_BYTES

    def __post_init__(self) -> None:
        if self.row_bytes <= 0:
            raise ConfigurationError("row_bytes must be positive")
        if self.scheme is TagScheme.VER_ECC and not self.ecc_feasible:
            raise ConfigurationError(
                f"Ver-ECC infeasible: a {self.tag_bytes}-byte tag needs "
                f">= {self.min_lines_for_ecc} data lines but rows span "
                f"{self.data_lines_aligned} (quantized sub-line rows cannot "
                "use the ECC chip - paper Sec. VII-A)"
            )

    # -- geometry ---------------------------------------------------------------

    @property
    def data_lines_aligned(self) -> int:
        """Lines per row when rows are stored line-aligned (no tags)."""
        return -(-self.row_bytes // LINE_BYTES)

    @property
    def min_lines_for_ecc(self) -> int:
        return -(-self.tag_bytes // ECC_BYTES_PER_LINE)

    @property
    def ecc_feasible(self) -> bool:
        return self.data_lines_aligned >= self.min_lines_for_ecc

    @property
    def stride_bytes(self) -> int:
        """Byte stride between consecutive rows in memory."""
        if self.scheme is TagScheme.VER_COLOC:
            return self.row_bytes + self.tag_bytes
        return self.row_bytes

    # -- per-row access cost -------------------------------------------------------

    def lines_for_row(self, row_index: int) -> int:
        """Number of data-region lines one row-read touches.

        For VER_COLOC the row+tag unit is packed at ``stride_bytes`` and
        rows drift across line boundaries, so the count depends on the row
        index - reproducing the paper's "data is not aligned with the
        cache line boundary" effect.
        """
        if self.scheme is TagScheme.VER_COLOC:
            start = row_index * self.stride_bytes
            end = start + self.row_bytes + self.tag_bytes
        else:
            start = row_index * self.stride_bytes
            # Non-coloc layouts keep rows line-aligned when they are at
            # least a line; sub-line rows pack within lines.
            end = start + self.row_bytes
        first = start // LINE_BYTES
        last = (end - 1) // LINE_BYTES
        return last - first + 1

    def extra_tag_line(self) -> bool:
        """Does each queried row cost a separate tag-region line fetch?"""
        return self.scheme is TagScheme.VER_SEP

    def tag_otp_blocks_per_row(self) -> int:
        """Extra OTP blocks per queried row (the ``E_{T_k}`` pads)."""
        if self.scheme is TagScheme.ENC_ONLY:
            return 0
        return -(-self.tag_bytes // 16)
