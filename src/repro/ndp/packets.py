"""NDP packet generation (the paper's "NDP packet generator").

The software stack turns a batch of pooling queries into *packets* of NDP
commands (Sec. VI-B): each packet carries up to ``NDP_reg`` simultaneous
queries (one PU register per in-flight query), and within a packet each
rank receives the commands for the rows its shard owns.  Packet latency
is bounded by the slowest rank, so the per-packet row distribution -
which this module computes - is what determines NDP load balance and the
benefit of more registers.

Data placement follows rank-level NDP practice (RecNMP [36]): table rows
are striped round-robin across the ``NDP_rank`` enabled ranks, each
rank's shard packed contiguously in rank-local address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError
from .verification import LINE_BYTES, TagPlacement, TagScheme

__all__ = ["TableGeometry", "SimQuery", "NdpWorkload", "NdpPacket", "PacketGenerator"]


@dataclass(frozen=True)
class TableGeometry:
    """Shape of one pooled table as the simulator sees it."""

    n_rows: int
    row_bytes: int       #: payload bytes per row (excludes any tag)
    result_bytes: int    #: bytes of the pooled result vector

    def __post_init__(self) -> None:
        if min(self.n_rows, self.row_bytes, self.result_bytes) <= 0:
            raise ConfigurationError("table geometry fields must be positive")


@dataclass(frozen=True)
class SimQuery:
    """One pooling query: which rows of which table are summed."""

    table: int
    rows: Tuple[int, ...]

    @property
    def pooling_factor(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class NdpWorkload:
    """A batch of queries over a set of tables."""

    tables: Dict[int, TableGeometry]
    queries: Tuple[SimQuery, ...]

    def validate(self) -> None:
        for q in self.queries:
            geo = self.tables.get(q.table)
            if geo is None:
                raise ConfigurationError(f"query references unknown table {q.table}")
            for r in q.rows:
                if not 0 <= r < geo.n_rows:
                    raise ConfigurationError(
                        f"row {r} out of range for table {q.table} ({geo.n_rows})"
                    )


@dataclass
class NdpPacket:
    """One dispatch unit: per-rank line addresses plus OTP-side demand."""

    queries: List[SimQuery]
    #: rank -> list of rank-local byte line addresses to read
    rank_lines: Dict[int, List[int]]
    #: OTP blocks the SecNDP engine must generate for this packet's data
    data_otp_blocks: int
    #: additional OTP blocks for tag pads (0 when unverified)
    tag_otp_blocks: int
    #: lines of results to ship back over the channel bus (NDPLd)
    result_lines: int

    @property
    def total_otp_blocks(self) -> int:
        return self.data_otp_blocks + self.tag_otp_blocks

    @property
    def total_lines(self) -> int:
        return sum(len(v) for v in self.rank_lines.values())


class PacketGenerator:
    """Turns a workload into packets for a given NDP configuration."""

    def __init__(
        self,
        workload: NdpWorkload,
        ndp_ranks: int,
        ndp_regs: int,
        placement: TagPlacement | None = None,
        tag_scheme: TagScheme = TagScheme.ENC_ONLY,
    ):
        if ndp_ranks < 1 or ndp_regs < 1:
            raise ConfigurationError("ndp_ranks and ndp_regs must be >= 1")
        workload.validate()
        self.workload = workload
        self.ndp_ranks = ndp_ranks
        self.ndp_regs = ndp_regs
        self.tag_scheme = tag_scheme
        # One placement per table geometry (row_bytes differ between tables
        # only in heterogeneous setups; build lazily and cache).
        self._placements: Dict[int, TagPlacement] = {}
        self._shard_bases = self._layout_shards()

    # -- layout ---------------------------------------------------------------

    def placement_for(self, table: int) -> TagPlacement:
        p = self._placements.get(table)
        if p is None:
            p = TagPlacement(
                scheme=self.tag_scheme,
                row_bytes=self.workload.tables[table].row_bytes,
            )
            self._placements[table] = p
        return p

    def _shard_stride(self, table: int) -> int:
        return self.placement_for(table).stride_bytes

    def _layout_shards(self) -> Dict[int, int]:
        """Assign each table's shard a base address in rank-local space.

        The same base applies to every rank (shards are symmetric).
        Shard bases are line-aligned.
        """
        bases: Dict[int, int] = {}
        cursor = 0
        for table in sorted(self.workload.tables):
            geo = self.workload.tables[table]
            bases[table] = cursor
            rows_per_rank = -(-geo.n_rows // self.ndp_ranks)
            shard_bytes = rows_per_rank * self._shard_stride(table)
            # Separate tag region (Ver-sep) sits after the data shard.
            if self.tag_scheme is TagScheme.VER_SEP:
                shard_bytes += rows_per_rank * LINE_BYTES  # 1 tag line per row slot
            cursor += -(-shard_bytes // LINE_BYTES) * LINE_BYTES
        return bases

    def rank_of_row(self, table: int, row: int) -> int:
        return row % self.ndp_ranks

    def local_index(self, row: int) -> int:
        return row // self.ndp_ranks

    def row_line_addrs(self, table: int, row: int) -> Tuple[int, List[int]]:
        """(rank, rank-local line addresses) for one row-read."""
        geo = self.workload.tables[table]
        placement = self.placement_for(table)
        rank = self.rank_of_row(table, row)
        local = self.local_index(row)
        base = self._shard_bases[table]
        start = base + local * placement.stride_bytes
        end = start + placement.row_bytes + (
            placement.tag_bytes if self.tag_scheme is TagScheme.VER_COLOC else 0
        )
        first = start // LINE_BYTES
        last = (end - 1) // LINE_BYTES
        lines = [line * LINE_BYTES for line in range(first, last + 1)]
        if placement.extra_tag_line():
            # Ver-sep: the row's tag lives in the shard's tag region.
            rows_per_rank = -(-geo.n_rows // self.ndp_ranks)
            tag_region = base + rows_per_rank * placement.stride_bytes
            lines.append(tag_region + local // 4 * LINE_BYTES)  # 4 tags/line
        return rank, lines

    # -- packet stream -----------------------------------------------------------

    def packets(self) -> Iterator[NdpPacket]:
        """Yield packets of up to ``NDP_reg`` queries each."""
        queries = list(self.workload.queries)
        for i in range(0, len(queries), self.ndp_regs):
            chunk = queries[i : i + self.ndp_regs]
            rank_lines: Dict[int, List[int]] = {r: [] for r in range(self.ndp_ranks)}
            data_blocks = 0
            tag_blocks = 0
            result_lines = 0
            for q in chunk:
                geo = self.workload.tables[q.table]
                placement = self.placement_for(q.table)
                for row in q.rows:
                    rank, lines = self.row_line_addrs(q.table, row)
                    rank_lines[rank].extend(lines)
                    data_blocks += -(-geo.row_bytes // 16)
                    tag_blocks += placement.tag_otp_blocks_per_row()
                # Each participating rank ships its partial result back.
                per_rank_result = -(-geo.result_bytes // LINE_BYTES)
                ranks_touched = {self.rank_of_row(q.table, r) for r in q.rows}
                result_lines += per_rank_result * max(len(ranks_touched), 1)
            yield NdpPacket(
                queries=chunk,
                rank_lines={r: v for r, v in rank_lines.items() if v},
                data_otp_blocks=data_blocks,
                tag_otp_blocks=tag_blocks,
                result_lines=result_lines,
            )
