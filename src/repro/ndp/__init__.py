"""NDP architecture models: commands, PUs, packets, engines, simulator."""

from .aes_engine import AES_BLOCK_NS, AES_THROUGHPUT_GBPS, AesEngineModel
from .commands import ArithEnc, NdpInst, NdpLd, NdpOp, SecNdpInst, SecNdpLd
from .arith_enc import ArithEncResult, simulate_arith_enc
from .dimm import NdpDimm
from .executor import SecNdpExecutor, ShardedRegion
from .packets import (
    NdpPacket,
    NdpWorkload,
    PacketGenerator,
    SimQuery,
    TableGeometry,
)
from .pu import NdpPu
from .secndp_engine import PacketTiming, SecNdpEngineModel
from .simulator import NdpConfig, NdpRunResult, NdpSimulator
from .storage import NearStorageSimulator, SsdGeometry, StorageRunResult
from .verification import LINE_BYTES, TAG_BYTES, TagPlacement, TagScheme

__all__ = [
    "AES_BLOCK_NS",
    "AES_THROUGHPUT_GBPS",
    "AesEngineModel",
    "ArithEnc",
    "NdpInst",
    "NdpLd",
    "NdpOp",
    "SecNdpInst",
    "SecNdpLd",
    "ArithEncResult",
    "simulate_arith_enc",
    "NdpDimm",
    "SecNdpExecutor",
    "ShardedRegion",
    "NdpPacket",
    "NdpWorkload",
    "PacketGenerator",
    "SimQuery",
    "TableGeometry",
    "NdpPu",
    "PacketTiming",
    "SecNdpEngineModel",
    "NdpConfig",
    "NdpRunResult",
    "NdpSimulator",
    "NearStorageSimulator",
    "SsdGeometry",
    "StorageRunResult",
    "LINE_BYTES",
    "TAG_BYTES",
    "TagPlacement",
    "TagScheme",
]
