"""Rank-level NDP processing unit (functional + occupancy model).

Each NDP-enabled rank hosts one PU with ``NDP_reg`` registers
(Sec. V, "Baseline NDP Architecture").  Registers hold intermediate
weighted sums so several queries can be in flight without returning
partial results; when a workload needs more simultaneous intermediates
than there are registers, packets must be split - the register-pressure
effect the paper sweeps via ``NDP_reg``.

The PU here is deliberately minimal: an integer MAC datapath over ring
elements plus a tag MAC over the prime field (for the extended-register
design of Sec. V-D).  All *timing* is handled by the simulator; the PU
tracks only functional state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..crypto.prime_field import PrimeField
from ..crypto.ring import Ring
from ..errors import ConfigurationError

__all__ = ["NdpPu"]


class NdpPu:
    """One rank's NDP processing unit."""

    def __init__(self, ring: Ring, field_: PrimeField, n_registers: int = 8):
        if n_registers < 1:
            raise ConfigurationError("NDP PU needs at least one register")
        self.ring = ring
        self.field = field_
        self.n_registers = n_registers
        self._regs: List[Optional[np.ndarray]] = [None] * n_registers
        self._tag_regs: List[int] = [0] * n_registers
        #: lifetime statistics
        self.macs_executed = 0

    def _check(self, reg: int) -> None:
        if not 0 <= reg < self.n_registers:
            raise ConfigurationError(
                f"register {reg} out of range [0, {self.n_registers})"
            )

    def clear(self, reg: int) -> None:
        self._check(reg)
        self._regs[reg] = None
        self._tag_regs[reg] = 0

    def mac(self, reg: int, weight: int, vector: np.ndarray) -> None:
        """reg += weight * vector (ring arithmetic)."""
        self._check(reg)
        contribution = self.ring.mul(
            np.full(vector.shape, weight, dtype=self.ring.dtype),
            np.asarray(vector, dtype=self.ring.dtype),
        )
        if self._regs[reg] is None:
            self._regs[reg] = contribution
        else:
            self._regs[reg] = self.ring.add(self._regs[reg], contribution)
        self.macs_executed += 1

    def mac_tag(self, reg: int, weight: int, tag: int) -> None:
        """tag_reg += weight * tag (prime-field arithmetic)."""
        self._check(reg)
        self._tag_regs[reg] = self.field.add(
            self._tag_regs[reg], self.field.mul(weight, tag)
        )

    def load(self, reg: int) -> np.ndarray:
        self._check(reg)
        if self._regs[reg] is None:
            raise ConfigurationError(f"register {reg} loaded before any MAC")
        return self._regs[reg]

    def load_tag(self, reg: int) -> int:
        self._check(reg)
        return self._tag_regs[reg]
