"""Functional NDP DIMM: rank PUs operating on stored ciphertext.

Ties the functional pieces together the way the hardware would: a DIMM
holds one :class:`~repro.ndp.pu.NdpPu` per NDP-enabled rank and a byte
store per rank shard; executing a packet of :class:`NdpInst` commands
reads vectors from the shard and MACs them into PU registers.  This is
the *functional* complement of :class:`~repro.ndp.simulator.NdpSimulator`
(which does timing only); integration tests use it to check that the
packetised execution computes exactly what the protocol layer computes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..crypto.prime_field import PrimeField
from ..crypto.ring import Ring
from ..errors import ConfigurationError
from .commands import NdpInst, NdpLd, NdpOp
from .pu import NdpPu

__all__ = ["NdpDimm"]


class NdpDimm:
    """Functional model of an NDP DIMM with per-rank PUs and shards."""

    def __init__(
        self,
        ring: Ring,
        field: PrimeField,
        n_ranks: int = 8,
        n_registers: int = 8,
    ):
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        self.ring = ring
        self.field = field
        self.n_ranks = n_ranks
        self.pus: List[NdpPu] = [
            NdpPu(ring, field, n_registers) for _ in range(n_ranks)
        ]
        # rank -> bytearray-like flat element store
        self._shards: Dict[int, np.ndarray] = {}

    # -- shard storage -----------------------------------------------------------

    def load_shard(self, rank: int, elements: np.ndarray) -> None:
        """Install a rank's shard as a flat array of ring elements."""
        self._check_rank(rank)
        self._shards[rank] = np.ascontiguousarray(elements, dtype=self.ring.dtype)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {self.n_ranks})")

    def read_vector(self, rank: int, elem_offset: int, vsize: int) -> np.ndarray:
        shard = self._shards[rank]
        if elem_offset + vsize > len(shard):
            raise ConfigurationError("vector read past end of shard")
        return shard[elem_offset : elem_offset + vsize]

    # -- command execution ----------------------------------------------------------

    def execute(self, rank: int, inst: NdpInst) -> None:
        """Execute one NDP command on the rank's PU.

        ``inst.paddr`` is interpreted as a rank-local *element* offset
        here (the functional store is element-addressed; the timing model
        owns byte/line addressing).
        """
        self._check_rank(rank)
        pu = self.pus[rank]
        vector = self.read_vector(rank, inst.paddr, inst.vsize)
        if inst.op is NdpOp.MAC:
            pu.mac(inst.reg_id, inst.imm, vector)
        elif inst.op is NdpOp.ADD:
            pu.mac(inst.reg_id, 1, vector)
        elif inst.op is NdpOp.COPY:
            pu.clear(inst.reg_id)
            pu.mac(inst.reg_id, 1, vector)
        else:  # pragma: no cover - enum is closed
            raise ConfigurationError(f"unsupported op {inst.op}")

    def load(self, rank: int, ld: NdpLd) -> np.ndarray:
        self._check_rank(rank)
        return self.pus[rank].load(ld.reg_id)
