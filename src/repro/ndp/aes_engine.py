"""AES encryption-engine throughput model (paper Table II, [22]).

The evaluation assumes a fully pipelined 45 nm AES design with 111.3 Gbps
throughput, i.e. one 128-bit block every 1.15 ns per engine; ring
additions/multiplications on the pad are pipelined behind the AES output
cycle by cycle (Sec. VI-B).  The SecNDP engine instantiates ``n_engines``
of these in parallel; OTP generation time for ``n`` blocks is therefore
``ceil(n / n_engines) * 1.15 ns`` in steady state, which we approximate
by the fluid ``n * 1.15 / n_engines`` (packets contain hundreds of
blocks, so pipeline fill is negligible and the paper's own throughput
analysis does the same).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["AesEngineModel", "AES_BLOCK_NS", "AES_THROUGHPUT_GBPS"]

#: One 128-bit block per engine per 1.15 ns [22].
AES_BLOCK_NS = 1.15
#: Equivalent per-engine throughput: 128 bits / 1.15 ns = 111.3 Gbps.
AES_THROUGHPUT_GBPS = 128 / AES_BLOCK_NS


@dataclass(frozen=True)
class AesEngineModel:
    """Aggregate throughput of the SecNDP engine's AES pipelines."""

    n_engines: int = 8
    block_ns: float = AES_BLOCK_NS
    #: pipeline latency for the first block (full AES rounds); only
    #: matters for tiny transfers.
    pipeline_fill_ns: float = 11.5

    def __post_init__(self) -> None:
        if self.n_engines < 1:
            raise ConfigurationError("need at least one AES engine")
        if self.block_ns <= 0:
            raise ConfigurationError("block_ns must be positive")

    def otp_time_ns(self, n_blocks: int, include_fill: bool = False) -> float:
        """Time to generate ``n_blocks`` OTP blocks across all engines."""
        if n_blocks <= 0:
            return 0.0
        steady = n_blocks * self.block_ns / self.n_engines
        return steady + (self.pipeline_fill_ns if include_fill else 0.0)

    @property
    def throughput_gbps(self) -> float:
        return self.n_engines * AES_THROUGHPUT_GBPS

    def blocks_for_bytes(self, n_bytes: int) -> int:
        """Number of OTP blocks covering ``n_bytes`` of ciphertext."""
        return -(-n_bytes // 16)
