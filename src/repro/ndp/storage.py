"""Near-storage NDP model (paper Secs. I/III-A: RecSSD/SmartSSD-class).

SecNDP claims to work unchanged over "any untrusted near-memory or
near-storage processing hardware"; this module provides the storage-side
substrate so that claim is exercised: an SSD with per-channel NAND dies
and a processing unit in the SSD controller that pools rows locally,
versus a host baseline that pulls raw pages over the NVMe link.

Geometry and rates are representative of a datacenter TLC drive:
16 KiB pages, ~65 us page reads (tR), 8 independent channels at
~1.2 GB/s each, and a host link around 3.5 GB/s.  The decisive asymmetry
mirrors the DRAM case: aggregate internal NAND bandwidth exceeds the
link, and pooling reduces the bytes that must cross it by ~PF.

The SecNDP overlay is identical to the DRAM path: per-batch OTP blocks
are generated on the host while the SSD reads, and the batch time is
``max(storage time, OTP time)`` - SSDs are slow enough that one or two
AES engines always suffice, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from ..faults import hooks as fault_hooks
from .aes_engine import AesEngineModel
from .packets import NdpWorkload

__all__ = ["SsdGeometry", "StorageRunResult", "NearStorageSimulator"]


@dataclass(frozen=True)
class SsdGeometry:
    """NAND organisation and rates."""

    channels: int = 8
    dies_per_channel: int = 4
    page_bytes: int = 16384
    page_read_us: float = 65.0        #: tR - die read into the page register
    channel_gbps: float = 1.2         #: NAND-to-controller transfer per channel
    host_link_gbps: float = 3.5       #: NVMe link to the host
    #: in-controller PU throughput (elements/ns); generous - pooling is
    #: trivially cheap next to NAND reads
    pu_gops: float = 4.0

    def __post_init__(self) -> None:
        if self.channels < 1 or self.page_bytes < 512 or self.dies_per_channel < 1:
            raise ConfigurationError("invalid SSD geometry")

    def page_transfer_us(self) -> float:
        return self.page_bytes / self.channel_gbps / 1000.0


@dataclass(frozen=True)
class StorageRunResult:
    """Timing of one pooling batch against the SSD."""

    ndp_us: float          #: near-storage execution (pages read + pooled in-drive)
    host_us: float         #: host baseline (pages shipped over the link)
    otp_blocks: int        #: OTP blocks SecNDP must generate for the batch
    pages_read: int
    result_bytes: int

    def secndp_us(self, aes: AesEngineModel) -> float:
        return max(self.ndp_us, aes.otp_time_ns(self.otp_blocks) / 1000.0)

    @property
    def ndp_speedup(self) -> float:
        return self.host_us / self.ndp_us

    def secndp_speedup(self, aes: AesEngineModel) -> float:
        return self.host_us / self.secndp_us(aes)


class NearStorageSimulator:
    """Replays a pooling workload against the SSD model.

    Rows are packed into NAND pages and striped page-round-robin across
    channels.  A query's cost is page reads (overlapped per channel, tR
    pipelined with transfers) plus - for the host baseline - the link
    transfer of every touched page; the near-storage path ships only the
    pooled results.
    """

    def __init__(self, geometry: SsdGeometry = SsdGeometry()):
        self.geometry = geometry

    def run(self, workload: NdpWorkload) -> StorageRunResult:
        geo = self.geometry
        workload.validate()

        # Collect distinct pages touched per channel (page-granular reads).
        channel_pages: Dict[int, set] = {c: set() for c in range(geo.channels)}
        total_row_bytes = 0
        result_bytes = 0
        for q in workload.queries:
            table = workload.tables[q.table]
            rows_per_page = max(geo.page_bytes // table.row_bytes, 1)
            for row in q.rows:
                page = row // rows_per_page
                channel_pages[page % geo.channels].add((q.table, page))
                total_row_bytes += table.row_bytes
            result_bytes += table.result_bytes

        pages_read = sum(len(p) for p in channel_pages.values())
        # Per-channel pipeline: tR overlaps across the channel's dies and
        # with transfers, so the steady-state per-page time is
        # max(tR / dies, transfer), plus one pipeline fill.
        per_page_us = max(
            geo.page_read_us / geo.dies_per_channel, geo.page_transfer_us()
        )
        busiest = max((len(p) for p in channel_pages.values()), default=0)
        ndp_us = busiest * per_page_us + geo.page_read_us
        # PU pooling time (elements through the MAC datapath), rarely binding.
        pu_us = total_row_bytes / 4 / geo.pu_gops / 1000.0
        ndp_us = max(ndp_us, pu_us)
        # Results cross the link.
        ndp_us += result_bytes / geo.host_link_gbps / 1000.0

        # Host baseline: same NAND reads, but every page also crosses the
        # link, which is shared across channels.
        link_us = pages_read * geo.page_bytes / geo.host_link_gbps / 1000.0
        host_us = max(busiest * per_page_us + geo.page_read_us, link_us)

        # Fault injection: dropped command packets force page re-reads,
        # duplicates re-execute transfers, delays stall the pipeline.
        # These are liveness faults on the command channel (the data
        # faults live in the functional layer); they only cost latency.
        inj = fault_hooks.armed_injector()
        if inj is not None:
            drops, dups, delay_s = inj.packet_faults(pages_read, "storage.run")
            retried_pages = drops + dups
            if retried_pages:
                ndp_us += retried_pages * per_page_us
                host_us += retried_pages * max(
                    per_page_us, geo.page_bytes / geo.host_link_gbps / 1000.0
                )
            ndp_us += delay_s * 1e6
            host_us += delay_s * 1e6

        otp_blocks = -(-total_row_bytes // 16)
        return StorageRunResult(
            ndp_us=ndp_us,
            host_us=host_us,
            otp_blocks=otp_blocks,
            pages_read=pages_read,
            result_bytes=result_bytes,
        )
