"""SecNDP engine timing model: OTP-side latency and bottleneck attribution.

For every NDP packet the SecNDP engine must generate the OTP blocks
covering the packet's data (plus tag pads when verification is on) and
stream them through the OTP PU.  The OTP PU's MAC datapath is pipelined
behind the AES engines (Sec. VI-B: "addition and multiplication on the
counter block are pipelined cycle-by-cycle after AES encryption"), so the
OTP side is AES-throughput-bound.

Per packet the effective latency is ``max(NDP latency, OTP latency)`` and
the final SecNDPLd adds one adder cycle; packets whose OTP latency
exceeds their NDP latency are "bottlenecked by decryption bandwidth" -
the quantity Figures 8 and 10 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .aes_engine import AesEngineModel

__all__ = ["PacketTiming", "SecNdpEngineModel"]


@dataclass(frozen=True)
class PacketTiming:
    """Timing of one packet under SecNDP."""

    ndp_ns: float
    otp_ns: float

    @property
    def secndp_ns(self) -> float:
        return max(self.ndp_ns, self.otp_ns)

    @property
    def decryption_bound(self) -> bool:
        return self.otp_ns > self.ndp_ns


@dataclass(frozen=True)
class SecNdpEngineModel:
    """Combines the AES pipeline model with per-packet accounting."""

    aes: AesEngineModel

    def packet_timing(self, ndp_ns: float, otp_blocks: int) -> PacketTiming:
        return PacketTiming(ndp_ns=ndp_ns, otp_ns=self.aes.otp_time_ns(otp_blocks))

    @staticmethod
    def bottleneck_fraction(timings: List[PacketTiming]) -> float:
        """Fraction of packets bottlenecked by decryption (Figs. 8/10)."""
        if not timings:
            return 0.0
        return sum(1 for t in timings if t.decryption_bound) / len(timings)

    @staticmethod
    def total_ns(timings: List[PacketTiming]) -> float:
        return sum(t.secndp_ns for t in timings)

    @staticmethod
    def total_ndp_only_ns(timings: List[PacketTiming]) -> float:
        return sum(t.ndp_ns for t in timings)
