"""Timing model for the initial encryption step (``ArithEnc``, Sec. V-E1).

Every SecNDP deployment pays a one-time T0 cost (Fig. 4): the matrix is
read through the SecNDP engine, pad-subtracted, optionally tagged, and
the ciphertext is written back to memory "like a cache line flush".
This phase is bandwidth-bound on the write stream and AES-bound on pad
generation, whichever is slower; the paper does not chart it (it is
amortised over the table's lifetime), but sizing it matters for
deployments that re-encrypt frequently (version churn under the 64-region
budget).

The model replays the writeback through the DDR4 controller and pairs it
with the AES pipeline time, mirroring how the query path is modelled in
:mod:`repro.ndp.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memsim.dram import DramSystem
from ..memsim.timing import DDR4Timing, DramGeometry
from .aes_engine import AesEngineModel
from .verification import LINE_BYTES, TAG_BYTES

__all__ = ["ArithEncResult", "simulate_arith_enc"]


@dataclass(frozen=True)
class ArithEncResult:
    """Cost of encrypting (and tagging) one region."""

    write_ns: float        #: DRAM writeback time for ciphertext (+ tags)
    otp_ns: float          #: AES pad-generation time (data + tag pads)
    checksum_elems: int    #: elements folded into row checksums
    total_lines: int

    @property
    def total_ns(self) -> float:
        """Pads are generated while previous lines drain: max, not sum."""
        return max(self.write_ns, self.otp_ns)

    @property
    def aes_bound(self) -> bool:
        return self.otp_ns > self.write_ns


def simulate_arith_enc(
    n_rows: int,
    row_bytes: int,
    with_tags: bool = True,
    aes: Optional[AesEngineModel] = None,
    timing: Optional[DDR4Timing] = None,
    geometry: Optional[DramGeometry] = None,
    base_addr: int = 0,
) -> ArithEncResult:
    """Replay one region's initial encryption.

    The ciphertext writeback streams sequentially over the channel bus
    (ArithEnc is issued from the processor side); tags are written inline
    after each row when ``with_tags`` (the Ver-coloc layout - the cheapest
    write path; other placements differ only marginally at init time).
    """
    aes = aes or AesEngineModel(n_engines=8)
    timing = timing or DDR4Timing()
    dram = DramSystem(timing, geometry or DramGeometry(), identity_pages=True)

    stride = row_bytes + (TAG_BYTES if with_tags else 0)
    total_bytes = n_rows * stride
    first_line = base_addr // LINE_BYTES
    last_line = (base_addr + total_bytes - 1) // LINE_BYTES
    completion = 0
    n_lines = 0
    for line in range(first_line, last_line + 1):
        res = dram.access_physical(line * LINE_BYTES, at=0, is_write=True)
        completion = max(completion, res.completion_cycle)
        n_lines += 1
    write_ns = timing.cycles_to_ns(completion)

    data_blocks = n_rows * (-(-row_bytes // 16))
    tag_blocks = n_rows * (-(-TAG_BYTES // 16)) if with_tags else 0
    # +1 block per region for the checksum secret s (E_01 domain).
    otp_ns = aes.otp_time_ns(data_blocks + tag_blocks + (1 if with_tags else 0))

    checksum_elems = n_rows * row_bytes // 4 if with_tags else 0
    return ArithEncResult(
        write_ns=write_ns,
        otp_ns=otp_ns,
        checksum_elems=checksum_elems,
        total_lines=n_lines,
    )
