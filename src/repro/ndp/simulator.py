"""Cycle-level NDP simulation (the paper's "cycle-level NDP module").

Given a pooling workload and an NDP configuration, the simulator:

1. generates NDP packets (up to ``NDP_reg`` queries each),
2. replays each packet's rank-local line reads through the DDR4 timing
   model (all ranks in parallel, no channel-bus usage - data is consumed
   by the rank PU),
3. adds the fixed packet overhead (control-register initialisation plus
   the NDPLd result transfer over the channel bus),
4. pairs each packet's DRAM latency with its OTP-generation latency to
   produce the SecNDP timeline (``max`` per packet) and per-packet
   bottleneck attribution.

One run yields everything the evaluation figures need: unprotected-NDP
time (``sum ndp_ns``), SecNDP time for any AES-engine count (the OTP side
is recomputed analytically from the recorded per-packet block counts
without re-running DRAM), bottleneck fractions, and energy counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..errors import ConfigurationError
from ..memsim.dram import DramSystem
from ..memsim.timing import DDR4Timing, DramGeometry
from .aes_engine import AesEngineModel
from .packets import NdpPacket, NdpWorkload, PacketGenerator
from .secndp_engine import PacketTiming, SecNdpEngineModel
from .verification import TagScheme

__all__ = ["NdpConfig", "NdpRunResult", "NdpSimulator"]


@dataclass(frozen=True)
class NdpConfig:
    """Architectural knobs of one NDP setting (Figs. 7-10 sweep these)."""

    ndp_ranks: int = 8
    ndp_regs: int = 8
    tag_scheme: TagScheme = TagScheme.ENC_ONLY
    #: DRAM cycles to configure memory-mapped control registers per packet
    packet_overhead_cycles: int = 32

    def __post_init__(self) -> None:
        if self.ndp_ranks < 1 or self.ndp_regs < 1:
            raise ConfigurationError("ndp_ranks/ndp_regs must be >= 1")


@dataclass
class PacketRecord:
    """Everything recorded about one simulated packet."""

    ndp_ns: float
    otp_blocks: int
    lines: int
    result_lines: int


@dataclass
class NdpRunResult:
    """Outcome of one workload replay under one NDP configuration."""

    config: NdpConfig
    records: List[PacketRecord]
    dram: DramSystem

    # -- timing -----------------------------------------------------------------

    @property
    def ndp_only_ns(self) -> float:
        """Unprotected-NDP execution time."""
        return sum(r.ndp_ns for r in self.records)

    def secndp_timings(self, aes: AesEngineModel) -> List[PacketTiming]:
        engine = SecNdpEngineModel(aes)
        return [engine.packet_timing(r.ndp_ns, r.otp_blocks) for r in self.records]

    def secndp_ns(self, aes: AesEngineModel) -> float:
        return SecNdpEngineModel.total_ns(self.secndp_timings(aes))

    def decryption_bound_fraction(self, aes: AesEngineModel) -> float:
        return SecNdpEngineModel.bottleneck_fraction(self.secndp_timings(aes))

    # -- traffic ------------------------------------------------------------------

    @property
    def total_lines(self) -> int:
        return sum(r.lines for r in self.records)

    @property
    def total_result_lines(self) -> int:
        return sum(r.result_lines for r in self.records)

    @property
    def total_otp_blocks(self) -> int:
        return sum(r.otp_blocks for r in self.records)


class NdpSimulator:
    """Replays pooling workloads against the DDR4 model."""

    def __init__(
        self,
        config: NdpConfig,
        timing: Optional[DDR4Timing] = None,
        geometry: Optional[DramGeometry] = None,
    ):
        self.config = config
        self.timing = timing or DDR4Timing()
        self.geometry = geometry or DramGeometry()
        if config.ndp_ranks > self.geometry.ranks:
            raise ConfigurationError(
                f"NDP_rank={config.ndp_ranks} exceeds geometry ranks "
                f"({self.geometry.ranks})"
            )

    def run(self, workload: NdpWorkload) -> NdpRunResult:
        with obs.span("ndp.run", cat="sim"):
            return self._run(workload)

    def _run(self, workload: NdpWorkload) -> NdpRunResult:
        cfg = self.config
        dram = DramSystem(self.timing, self.geometry, identity_pages=True)
        generator = PacketGenerator(
            workload,
            ndp_ranks=cfg.ndp_ranks,
            ndp_regs=cfg.ndp_regs,
            tag_scheme=cfg.tag_scheme,
        )
        records: List[PacketRecord] = []
        clock = 0  # cycles
        for packet in generator.packets():
            start = clock + cfg.packet_overhead_cycles
            end = start
            for rank, lines in packet.rank_lines.items():
                for addr in lines:
                    res = dram.access_rank_local(rank, addr, at=start)
                    if res.completion_cycle > end:
                        end = res.completion_cycle
            # NDPLd: partial results cross the otherwise-idle channel bus
            # and overlap with the next packet's rank-internal reads, so
            # they cost IO energy but only one burst of latency (the last
            # result) plus the final SecNDPLd adder cycle.
            dram.counters.bus_bursts += packet.result_lines
            end += self.timing.tBL + 1
            duration_ns = self.timing.cycles_to_ns(end - clock)
            records.append(
                PacketRecord(
                    ndp_ns=duration_ns,
                    otp_blocks=packet.total_otp_blocks,
                    lines=packet.total_lines,
                    result_lines=packet.result_lines,
                )
            )
            clock = end
        result = NdpRunResult(config=cfg, records=records, dram=dram)
        if obs.enabled():
            obs.inc("ndp.packets", len(records))
            obs.inc("ndp.lines", result.total_lines)
            obs.inc("ndp.result_lines", result.total_result_lines)
            obs.inc("ndp.otp_blocks", result.total_otp_blocks)
            dram.counters.publish()
        return result
