"""NDP / SecNDP ISA-level command formats (paper Fig. 5).

The baseline NDP protocol has two instruction families:

* ``NDPInst`` - carries everything an NDP command needs: the data address,
  the operation, vector/data sizes, an immediate (the weight ``a_i``), and
  the destination register.
* ``NDPLd`` - moves an NDP PU register back to the processor.

SecNDP adds ``SecNDPInst`` / ``SecNDPLd``, which are the same formats
plus a version-number field and a verification bit (Sec. V-B) - the NDP
side cannot tell them apart from the baseline commands, which is the
"no NDP changes" property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "NdpOp",
    "NdpInst",
    "NdpLd",
    "SecNdpInst",
    "SecNdpLd",
    "ArithEnc",
]


class NdpOp(enum.Enum):
    """Arithmetic operations an NDP PU supports (add / MAC; Sec. V)."""

    MAC = "mac"          #: reg += imm * vector (weighted-summation step)
    ADD = "add"          #: reg += vector
    COPY = "copy"        #: reg = vector


@dataclass(frozen=True)
class NdpInst:
    """Baseline NDP compute instruction (Fig. 5 operand list)."""

    paddr: int           #: physical address of the row vector
    op: NdpOp            #: operation to perform
    vsize: int           #: vector length in elements (m)
    dsize: int           #: element width in bits (w_e)
    imm: int             #: immediate operand (the weight a_i)
    reg_id: int          #: destination register in the NDP PU

    @property
    def vector_bytes(self) -> int:
        return self.vsize * self.dsize // 8


@dataclass(frozen=True)
class NdpLd:
    """Load an NDP PU register back to the processor."""

    reg_id: int
    vsize: int
    dsize: int


@dataclass(frozen=True)
class SecNdpInst:
    """SecNDP compute instruction: NDPInst + version + verification bit.

    The extra fields are consumed by the SecNDP engine on the processor
    side only; the NDP command derived from this instruction is a plain
    :class:`NdpInst`.
    """

    inner: NdpInst
    version: int
    verify: bool = False

    def to_ndp_command(self) -> NdpInst:
        """The unmodified command actually dispatched to the NDP PU."""
        return self.inner


@dataclass(frozen=True)
class SecNdpLd:
    """SecNDP load: adds the OTP-PU share and (optionally) verifies."""

    inner: NdpLd
    verify: bool = False


@dataclass(frozen=True)
class ArithEnc:
    """Initial-encryption instruction (Sec. V-E1).

    Encrypts ``n_bytes`` at ``paddr`` under ``version`` and writes the
    ciphertext back like a cache-line flush; when ``with_tags`` is set the
    verification engine also emits a tag per ``row_bytes`` of data.
    """

    paddr: int
    n_bytes: int
    version: int
    with_tags: bool = False
    row_bytes: int = 0
