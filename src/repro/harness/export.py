"""JSON export of experiment results (for plotting / CI artifacts).

Every ``run_*`` result object in :mod:`repro.harness.experiments` is a
plain dataclass of dicts/lists/floats; :func:`to_jsonable` converts one
(including tuple keys and None entries) into a JSON-serialisable tree and
:func:`export_results` writes a results bundle with provenance metadata.
"""

from __future__ import annotations

import dataclasses
import json
import platform
from pathlib import Path
from typing import Any, Dict

from .. import __version__

__all__ = ["to_jsonable", "export_results"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert experiment results into JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            # DRAM handles etc. are not data; skip non-serialisable leaves.
            if not f.name.startswith("_") and f.name not in ("dram",)
        }
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "value"):  # enums
        return obj.value
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    return repr(obj)


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "/".join(str(k) for k in key)
    return str(key)


def export_results(results: Dict[str, Any], path: str | Path) -> Path:
    """Write a named bundle of experiment results to ``path`` as JSON."""
    payload = {
        "meta": {
            "package": "repro (SecNDP, HPCA 2022 reproduction)",
            "version": __version__,
            "python": platform.python_version(),
        },
        "results": {name: to_jsonable(res) for name, res in results.items()},
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
