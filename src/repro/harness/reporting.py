"""Plain-text rendering of experiment tables and figure series.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        cells = []
        for i, cell in enumerate(row):
            if i == 0:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render figure data as one row per series over shared x values."""
    headers = [x_label] + [str(x) for x in x_values]
    rows: List[List[object]] = []
    for name, values in series.items():
        rows.append([name] + [fmt.format(v) for v in values])
    return render_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
