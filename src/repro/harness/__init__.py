"""Experiment harness: scales, CPU model, runners and rendering."""

from .configs import (
    CpuModel,
    DEFAULT_SCALE,
    ExperimentScale,
    PAPER_SCALE,
    SMOKE_SCALE,
)
from .reporting import render_series, render_table

__all__ = [
    "CpuModel",
    "DEFAULT_SCALE",
    "ExperimentScale",
    "PAPER_SCALE",
    "SMOKE_SCALE",
    "render_series",
    "render_table",
]
