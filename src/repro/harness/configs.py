"""Experiment scales and the CPU-TEE portion model.

Every experiment accepts an :class:`ExperimentScale` so the same code
runs at *paper* scale (GB tables, batch 256, PF 10,000 analytics) and at
*default* scale (seconds on a laptop) with identical geometry shape.
DESIGN.md documents the scaling argument: per-request DRAM timing is
size-independent, so speedup ratios survive the shrink as long as row
geometry, pooling factors and rank counts are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..workloads.dlrm import DlrmConfig

__all__ = ["ExperimentScale", "DEFAULT_SCALE", "SMOKE_SCALE", "PAPER_SCALE", "CpuModel"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that shrink experiments without changing their shape."""

    name: str
    #: embedding-table rows per table in the performance simulator
    rows_per_table: int
    #: DLRM inference batch size (queries per table = batch)
    batch: int
    #: SLS pooling factor
    pooling_factor: int
    #: analytics: patients in the database
    analytics_patients: int
    #: analytics: genes (row length m)
    analytics_genes: int
    #: analytics: patients pooled per query (paper: 10,000)
    analytics_pf: int
    #: analytics: number of summation queries
    analytics_queries: int
    #: trace seed
    seed: int = 0


#: Fast setting used by tests and default benchmark runs (seconds).
DEFAULT_SCALE = ExperimentScale(
    name="default",
    rows_per_table=100_000,
    batch=16,
    pooling_factor=80,
    analytics_patients=20_000,
    analytics_genes=1024,
    analytics_pf=2_000,
    analytics_queries=4,
)

#: Minimal setting for unit tests (sub-second).
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    rows_per_table=10_000,
    batch=4,
    pooling_factor=40,
    analytics_patients=2_000,
    analytics_genes=256,
    analytics_pf=200,
    analytics_queries=2,
)

#: The paper's configuration (hours in pure Python; for reference).
PAPER_SCALE = ExperimentScale(
    name="paper",
    rows_per_table=8_388_608,   # 1 GB / (8 tables x 128 B)
    batch=256,
    pooling_factor=80,
    analytics_patients=500_000,
    analytics_genes=1024,       # Sec. VI-A database parameters
    analytics_pf=10_000,
    analytics_queries=32,
)


@dataclass(frozen=True)
class CpuModel:
    """Analytic model of the CPU-TEE portion (MLPs) of DLRM inference.

    The paper measures this on SGX machines; we model it as
    FLOPs / effective throughput with a TEE tax.  ``effective_gflops``
    reflects a server-class multicore running cache-resident GEMMs;
    ``tee_slowdown`` is the ~5% ICL penalty for cache-resident enclaves
    (Sec. VI-B).
    """

    effective_gflops: float = 100.0
    tee_slowdown: float = 1.05
    #: fixed per-batch cost of the secure offload path: enclave transition
    #: (ECALL/OCALL) plus SecNDP command setup.  Amortised by batching -
    #: the mechanism behind Fig. 11's "speedup grows with batch size".
    offload_overhead_ns: float = 8000.0

    def mlp_ns(self, config: DlrmConfig, batch: int, in_tee: bool) -> float:
        flops = config.mlp_flops_per_sample() * batch
        ns = flops / self.effective_gflops  # GFLOPs == FLOPs per ns
        return ns * (self.tee_slowdown if in_tee else 1.0)
