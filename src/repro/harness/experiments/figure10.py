"""Figure 10 - % packets decryption-bound including verification.

Same attribution as Figure 8 but with the verification schemes of
Figure 9 at ``NDP_rank=8, NDP_reg=8``: tag pads add OTP blocks (Ver-ECC
especially, since it adds no DRAM traffic to hide behind), so verified
schemes need more AES engines to stop being decryption-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import ConfigurationError
from ...ndp.aes_engine import AesEngineModel
from ...ndp.verification import TagScheme
from ...parallel import parallel_map
from ..configs import DEFAULT_SCALE, ExperimentScale
from ..reporting import render_series
from .common import build_sls_workload, run_ndp, scaled_config
from .figure9 import SCHEMES_F9

__all__ = ["Figure10Result", "run_figure10", "AES_SWEEP_F10"]

AES_SWEEP_F10: List[int] = [2, 4, 6, 8, 10, 12, 16]


@dataclass
class Figure10Result:
    """fractions[workload][scheme] -> series over the AES sweep."""

    aes_sweep: List[int]
    fractions: Dict[str, Dict[str, List[float]]]

    def render(self) -> str:
        blocks = []
        for workload, series in self.fractions.items():
            blocks.append(
                render_series(
                    "#AES engines",
                    self.aes_sweep,
                    series,
                    title=(
                        f"-- {workload}: % packets decryption-bound "
                        "(rank=8, reg=8) --"
                    ),
                    fmt="{:.0%}",
                )
            )
        return "\n\n".join(blocks)


def _figure10_cell(item):
    """One (family, scheme) cell; must stay picklable."""
    label, workload, scheme_name, aes_sweep = item
    scheme = TagScheme(scheme_name)
    try:
        run = run_ndp(workload, tag_scheme=scheme)
    except ConfigurationError:
        return label, scheme.value, None  # Ver-ECC infeasible for quantized rows
    series = [run.decryption_bound_fraction(AesEngineModel(n)) for n in aes_sweep]
    return label, scheme.value, series


def run_figure10(
    scale: ExperimentScale = DEFAULT_SCALE,
    model: str = "RMC1-small",
    aes_sweep: List[int] = None,
    workers: Optional[int] = None,
) -> Figure10Result:
    aes_sweep = aes_sweep or AES_SWEEP_F10
    config = scaled_config(model, scale)
    items = []
    for label, element_bytes in (("SLS 32-bit", 4), ("SLS 8-bit quantized", 1)):
        workload = build_sls_workload(
            config, scale, element_bytes=element_bytes, trace_kind="production"
        )
        items.extend(
            (label, workload, scheme.value, aes_sweep) for scheme in SCHEMES_F9
        )
    fractions: Dict[str, Dict[str, List[float]]] = {}
    for label, key, series in parallel_map(_figure10_cell, items, workers=workers):
        fractions.setdefault(label, {})
        if series is not None:
            fractions[label][key] = series
    return Figure10Result(aes_sweep=aes_sweep, fractions=fractions)
