"""Figure 8 - % of NDP packets bottlenecked by decryption bandwidth.

For SLS operations with and without quantization, sweeps the number of
AES engines and reports, per ``NDP_rank``, the fraction of NDP packets
whose OTP-generation time exceeds their DRAM time (confidentiality-only
SecNDP).

Expected shape: the fraction falls as engines are added, rises with
``NDP_rank`` (more ranks -> more parallel memory throughput to match),
and the quantized workload needs roughly a third of the engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...ndp.aes_engine import AesEngineModel
from ...parallel import parallel_map
from ..configs import DEFAULT_SCALE, ExperimentScale
from ..reporting import render_series
from .common import build_sls_workload, run_ndp, scaled_config

__all__ = ["Figure8Result", "run_figure8", "RANK_SWEEP", "AES_SWEEP_F8"]

RANK_SWEEP: List[int] = [1, 2, 4, 8]
AES_SWEEP_F8: List[int] = [1, 2, 4, 6, 8, 10, 12]


@dataclass
class Figure8Result:
    """fractions[workload][f"rank={r}"] -> list over the AES sweep."""

    aes_sweep: List[int]
    fractions: Dict[str, Dict[str, List[float]]]

    def render(self) -> str:
        blocks = []
        for workload, series in self.fractions.items():
            blocks.append(
                render_series(
                    "#AES engines",
                    self.aes_sweep,
                    series,
                    title=f"-- {workload}: % packets decryption-bound --",
                    fmt="{:.0%}",
                )
            )
        return "\n\n".join(blocks)


def _figure8_cell(item):
    """One (family, rank) cell; must stay picklable."""
    label, workload, rank, aes_sweep = item
    run = run_ndp(workload, ndp_ranks=rank, ndp_regs=rank)
    series = [run.decryption_bound_fraction(AesEngineModel(n)) for n in aes_sweep]
    return label, f"rank={rank}", series


def run_figure8(
    scale: ExperimentScale = DEFAULT_SCALE,
    model: str = "RMC1-small",
    ranks: List[int] = None,
    aes_sweep: List[int] = None,
    workers: Optional[int] = None,
) -> Figure8Result:
    ranks = ranks or RANK_SWEEP
    aes_sweep = aes_sweep or AES_SWEEP_F8
    config = scaled_config(model, scale)

    items = []
    for label, element_bytes in (("SLS 32-bit", 4), ("SLS 8-bit quantized", 1)):
        workload = build_sls_workload(
            config, scale, element_bytes=element_bytes, trace_kind="production"
        )
        items.extend((label, workload, rank, aes_sweep) for rank in ranks)
    fractions: Dict[str, Dict[str, List[float]]] = {}
    for label, key, series in parallel_map(_figure8_cell, items, workers=workers):
        fractions.setdefault(label, {})[key] = series
    return Figure8Result(aes_sweep=aes_sweep, fractions=fractions)
