"""Table IV - model accuracy under the quantization schemes.

Thin wrapper over :func:`repro.analysis.accuracy.quantization_accuracy`
that renders the paper's table layout (LogLoss + degradation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...analysis.accuracy import AccuracyReport, quantization_accuracy
from ..reporting import render_table

__all__ = ["Table4Result", "run_table4"]


@dataclass
class Table4Result:
    report: AccuracyReport

    def render(self) -> str:
        rows = []
        for name, logloss, degradation in self.report.rows():
            rows.append([name, f"{logloss:.5f}", f"{degradation:+.2e}"])
        return render_table(
            ["scheme", "LogLoss", "LogLoss degradation"],
            rows,
            title="Table IV - accuracy of quantization schemes",
        )


def run_table4(**kwargs) -> Table4Result:
    return Table4Result(report=quantization_accuracy(**kwargs))
