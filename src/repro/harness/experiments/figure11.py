"""Figure 11 - end-to-end breakdown and batch-size scaling.

Top panel: normalised execution time of each DLRM model under SecNDP,
broken into the NDP portion (simulated SLS) and the CPU-TEE portion
(MLPs); the baseline's breakdown is shown for reference.

Bottom panel: end-to-end SecNDP speedup vs the unprotected non-NDP
baseline across batch sizes, plus the (flat) SGX-ICL reference.

Expected shape: the NDP portion dominates at large batch; speedup grows
with batch size and approaches the SLS-only speedup; SGX does not scale
with batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ...baselines.sgx import SGX_ICL, sgx_slowdown
from ...ndp.aes_engine import AesEngineModel
from ...ndp.verification import TagScheme
from ...parallel import parallel_map
from ..configs import CpuModel, DEFAULT_SCALE, ExperimentScale
from ..reporting import render_series, render_table
from .common import build_sls_workload, run_baseline, run_ndp, scaled_config

__all__ = ["Figure11Result", "run_figure11", "BATCH_SWEEP"]

BATCH_SWEEP: List[int] = [4, 16, 64, 256]


@dataclass
class Figure11Result:
    """Breakdown per model (at the scale's batch) + speedup-vs-batch series."""

    #: breakdown[model] -> dict with cpu_ns / ndp_ns for baseline and SecNDP
    breakdown: Dict[str, Dict[str, float]]
    batch_sweep: List[int]
    #: speedup_vs_batch[model] -> list of end-to-end speedups over the sweep
    speedup_vs_batch: Dict[str, List[float]]
    #: sgx_icl_vs_batch[model] -> flat SGX reference over the same sweep
    sgx_icl_vs_batch: Dict[str, List[float]]

    def render(self) -> str:
        rows = []
        for model, b in self.breakdown.items():
            total_base = b["base_cpu_ns"] + b["base_mem_ns"]
            total_sec = b["sec_cpu_ns"] + b["sec_ndp_ns"]
            rows.append(
                [
                    model,
                    f"{b['base_cpu_ns'] / total_base:.0%}",
                    f"{b['base_mem_ns'] / total_base:.0%}",
                    f"{b['sec_cpu_ns'] / total_sec:.0%}",
                    f"{b['sec_ndp_ns'] / total_sec:.0%}",
                    f"{total_base / total_sec:.2f}x",
                ]
            )
        top = render_table(
            ["model", "base CPU", "base mem", "SecNDP CPU", "SecNDP NDP", "speedup"],
            rows,
            title="Figure 11 (top) - execution-time breakdown",
        )
        bottom = render_series(
            "batch",
            self.batch_sweep,
            {
                **{f"SecNDP {m}": v for m, v in self.speedup_vs_batch.items()},
                **{f"SGX-ICL {m}": v for m, v in self.sgx_icl_vs_batch.items()},
            },
            title="Figure 11 (bottom) - end-to-end speedup vs batch size",
        )
        return top + "\n\n" + bottom


def _figure11_breakdown_cell(item):
    """Breakdown at the scale's default batch; must stay picklable."""
    model, scale, cpu, n_aes_engines = item
    config = scaled_config(model, scale)
    wl = build_sls_workload(config, scale)
    base_mem = run_baseline(wl).total_ns
    sec = run_ndp(wl, tag_scheme=TagScheme.VER_ECC)
    return model, {
        "base_cpu_ns": cpu.mlp_ns(config, scale.batch, in_tee=False),
        "base_mem_ns": base_mem,
        "sec_cpu_ns": cpu.mlp_ns(config, scale.batch, in_tee=True)
        + cpu.offload_overhead_ns,
        "sec_ndp_ns": sec.secndp_ns(AesEngineModel(n_aes_engines)),
    }


def _figure11_batch_cell(item):
    """One (model, batch) point of the bottom panel; must stay picklable."""
    model, scale, cpu, n_aes_engines, batch = item
    config = scaled_config(model, scale)
    batch_scale = replace(scale, batch=batch)
    wl_b = build_sls_workload(config, batch_scale)
    base_mem_b = run_baseline(wl_b).total_ns
    sec_b = run_ndp(wl_b, tag_scheme=TagScheme.VER_ECC)
    cpu_plain = cpu.mlp_ns(config, batch, in_tee=False)
    cpu_tee = cpu.mlp_ns(config, batch, in_tee=True)
    e2e_base = cpu_plain + base_mem_b
    e2e_sec = (
        cpu_tee
        + cpu.offload_overhead_ns
        + sec_b.secndp_ns(AesEngineModel(n_aes_engines))
    )
    icl_ns = cpu_plain * SGX_ICL.cache_resident_factor + sgx_slowdown(
        SGX_ICL,
        config.total_embedding_bytes,
        batch * config.n_tables * scale.pooling_factor * 128,
        base_mem_b,
    )
    return model, batch, e2e_base / e2e_sec, e2e_base / icl_ns


def run_figure11(
    scale: ExperimentScale = DEFAULT_SCALE,
    models: List[str] = None,
    cpu: CpuModel = CpuModel(),
    n_aes_engines: int = 12,
    workers: Optional[int] = None,
) -> Figure11Result:
    models = models or ["RMC1-small", "RMC2-small"]

    breakdown_cells = parallel_map(
        _figure11_breakdown_cell,
        [(model, scale, cpu, n_aes_engines) for model in models],
        workers=workers,
    )
    breakdown: Dict[str, Dict[str, float]] = dict(breakdown_cells)

    batch_cells = parallel_map(
        _figure11_batch_cell,
        [
            (model, scale, cpu, n_aes_engines, batch)
            for model in models
            for batch in BATCH_SWEEP
        ],
        workers=workers,
    )
    speedup_vs_batch: Dict[str, List[float]] = {m: [] for m in models}
    sgx_vs_batch: Dict[str, List[float]] = {m: [] for m in models}
    # Cells come back in dispatch order (parallel_map preserves it), so
    # each model's series stays aligned with BATCH_SWEEP.
    for model, batch, speedup, sgx_speedup in batch_cells:
        speedup_vs_batch[model].append(speedup)
        sgx_vs_batch[model].append(sgx_speedup)

    return Figure11Result(
        breakdown=breakdown,
        batch_sweep=BATCH_SWEEP,
        speedup_vs_batch=speedup_vs_batch,
        sgx_icl_vs_batch=sgx_vs_batch,
    )
