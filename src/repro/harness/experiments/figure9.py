"""Figure 9 - speedup of SecNDP encryption + verification schemes.

At ``NDP_rank=8, NDP_reg=8`` with twelve AES engines, compares
unprotected NDP against SecNDP with Enc-only, Ver-coloc, Ver-sep and
Ver-ECC tag placement, for SLS 32-bit, SLS 8-bit quantized, and the
analytics workload (128-bit tags).

Expected shape: Ver-ECC matches Enc-only; Ver-coloc sits slightly below;
Ver-sep loses ~40% (separate tag lines); with quantization Ver-ECC is
infeasible (tags don't fit the ECC capacity of sub-line rows) and
Ver-coloc approaches Enc-only; analytics sees small verification
overhead because its rows are long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import ConfigurationError
from ...ndp.aes_engine import AesEngineModel
from ...ndp.verification import TagScheme
from ...parallel import parallel_map
from ..configs import DEFAULT_SCALE, ExperimentScale
from ..reporting import render_table
from .common import (
    build_analytics_workload,
    build_sls_workload,
    run_baseline,
    run_ndp,
    scaled_config,
)

__all__ = ["Figure9Result", "run_figure9", "SCHEMES_F9"]

SCHEMES_F9 = [
    TagScheme.ENC_ONLY,
    TagScheme.VER_COLOC,
    TagScheme.VER_SEP,
    TagScheme.VER_ECC,
]


@dataclass
class Figure9Result:
    """speedups[workload][scheme-name] -> speedup vs that family's non-NDP
    (None where the scheme is infeasible, e.g. Ver-ECC on quantized rows)."""

    speedups: Dict[str, Dict[str, Optional[float]]]

    def render(self) -> str:
        scenario_names = ["NDP (unprotected)"] + [s.value for s in SCHEMES_F9]
        rows = []
        for workload, values in self.speedups.items():
            row: List[object] = [workload]
            for name in scenario_names:
                v = values.get(name)
                row.append("N/A" if v is None else f"{v:.2f}x")
            rows.append(row)
        return render_table(
            ["workload"] + scenario_names,
            rows,
            title="Figure 9 - verification-scheme speedups (rank=8, reg=8, 12 AES)",
        )


def _figure9_cell(item):
    """One (family, scenario) cell; must stay picklable."""
    label, workload, scheme_name, base, n_aes_engines = item
    if scheme_name is None:
        plain = run_ndp(workload)
        return label, "NDP (unprotected)", base / plain.ndp_only_ns
    scheme = TagScheme(scheme_name)
    try:
        run = run_ndp(workload, tag_scheme=scheme)
    except ConfigurationError:
        return label, scheme.value, None  # Ver-ECC on sub-line rows
    return label, scheme.value, base / run.secndp_ns(AesEngineModel(n_aes_engines))


def run_figure9(
    scale: ExperimentScale = DEFAULT_SCALE,
    model: str = "RMC1-small",
    n_aes_engines: int = 12,
    workers: Optional[int] = None,
) -> Figure9Result:
    config = scaled_config(model, scale)

    workloads = {
        "SLS 32-bit": build_sls_workload(config, scale, element_bytes=4),
        "SLS 8-bit quantized": build_sls_workload(config, scale, element_bytes=1),
        "Data analytics": build_analytics_workload(scale),
    }
    # Both SLS families are normalised to the *unquantized* non-NDP
    # baseline, matching Fig. 7's convention (quantized bars sit higher).
    base32 = run_baseline(workloads["SLS 32-bit"]).total_ns
    items = []
    for label, workload in workloads.items():
        base = base32 if label.startswith("SLS") else run_baseline(workload).total_ns
        for scheme_name in [None] + [s.value for s in SCHEMES_F9]:
            items.append((label, workload, scheme_name, base, n_aes_engines))
    speedups: Dict[str, Dict[str, Optional[float]]] = {}
    for label, scenario, value in parallel_map(_figure9_cell, items, workers=workers):
        speedups.setdefault(label, {})[scenario] = value
    return Figure9Result(speedups=speedups)
