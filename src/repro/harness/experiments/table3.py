"""Table III - end-to-end speedup of SecNDP vs baselines and SGX.

Reproduces::

                         RMC1-small RMC1-large RMC2-small RMC2-large Analytics
    unprotected non-NDP     1x         1x         1x         1x        1x
    unprotected NDP         2.46x      3.11x      4.05x      4.44x     7.46x
    SGX-CFL                 0.0038x    0.0037x    N/A        N/A       0.1738x
    SGX-ICL (no int. tree)  0.59x      0.60x      N/A        N/A       0.57x
    SecNDP                  2.36x      3.02x      3.95x      4.33x     7.46x

End-to-end DLRM time = CPU-TEE portion (MLPs, analytic model) + SLS
portion (simulated); analytics is purely the summation.  SGX rows use the
mechanism models of :mod:`repro.baselines.sgx` with the *paper-scale*
working sets (the paging cliff needs GB-sized tables); N/A is reported
for RMC2 models exactly as in the paper (SGX malloc limits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...baselines.sgx import SGX_CFL, SGX_ICL, sgx_slowdown
from ...ndp.aes_engine import AesEngineModel
from ...ndp.verification import TagScheme
from ...parallel import parallel_map
from ...workloads.dlrm import RMC_CONFIGS
from ..configs import CpuModel, DEFAULT_SCALE, ExperimentScale
from ..reporting import render_table
from .common import (
    build_analytics_workload,
    build_sls_workload,
    run_baseline,
    run_ndp,
    scaled_config,
)

__all__ = ["Table3Result", "run_table3"]

#: Paper: "we could only run RMC1 in SGX" (malloc limit ~2 GB).
SGX_MALLOC_LIMIT_BYTES = 2 << 30

MODELS = ["RMC1-small", "RMC1-large", "RMC2-small", "RMC2-large"]
SCENARIOS = [
    "unprotected non-NDP",
    "unprotected NDP",
    "SGX-CFL",
    "SGX-ICL (no int. tree)",
    "SecNDP",
]


@dataclass
class Table3Result:
    """Speedups (vs unprotected non-NDP) per scenario per workload."""

    speedups: Dict[str, Dict[str, Optional[float]]]
    columns: List[str]

    def render(self) -> str:
        rows = []
        for scenario in SCENARIOS:
            row: List[object] = [scenario]
            for col in self.columns:
                value = self.speedups[scenario].get(col)
                if value is None:
                    row.append("N/A")
                elif value < 0.01:
                    row.append(f"{value:.4f}x")
                else:
                    row.append(f"{value:.2f}x")
            rows.append(row)
        return render_table(
            [""] + self.columns, rows, title="Table III - SecNDP speedup"
        )


def _table3_model_cell(item):
    """One model column (all five scenarios); must stay picklable."""
    name, scale, cpu, n_aes_engines = item
    aes = AesEngineModel(n_engines=n_aes_engines)
    config = scaled_config(name, scale)
    full_config = RMC_CONFIGS[name]
    workload = build_sls_workload(config, scale)

    base = run_baseline(workload)
    ndp = run_ndp(workload, tag_scheme=TagScheme.ENC_ONLY)
    ver = run_ndp(workload, tag_scheme=TagScheme.VER_ECC)

    cpu_plain_ns = cpu.mlp_ns(config, scale.batch, in_tee=False)
    cpu_tee_ns = cpu.mlp_ns(config, scale.batch, in_tee=True)

    e2e_base = cpu_plain_ns + base.total_ns
    e2e_ndp = cpu_plain_ns + ndp.ndp_only_ns
    e2e_secndp = cpu_tee_ns + cpu.offload_overhead_ns + ver.secndp_ns(aes)

    column: Dict[str, Optional[float]] = {
        "unprotected non-NDP": 1.0,
        "unprotected NDP": e2e_base / e2e_ndp,
        "SecNDP": e2e_base / e2e_secndp,
    }
    ws = full_config.total_embedding_bytes
    touched = (
        scale.batch
        * config.n_tables
        * scale.pooling_factor
        * config.embedding_dim
        * 4
    )
    if ws > SGX_MALLOC_LIMIT_BYTES:
        column["SGX-CFL"] = None
        column["SGX-ICL (no int. tree)"] = None
    else:
        cfl_ns = (
            cpu_plain_ns * SGX_CFL.cache_resident_factor
            + sgx_slowdown(SGX_CFL, ws, touched, base.total_ns)
        )
        icl_ns = (
            cpu_plain_ns * SGX_ICL.cache_resident_factor
            + sgx_slowdown(SGX_ICL, ws, touched, base.total_ns)
        )
        column["SGX-CFL"] = e2e_base / cfl_ns
        column["SGX-ICL (no int. tree)"] = e2e_base / icl_ns
    return name, column


def _table3_analytics_cell(item):
    """The Data Analytics column; must stay picklable."""
    scale, n_aes_engines = item
    aes = AesEngineModel(n_engines=n_aes_engines)
    wl = build_analytics_workload(scale)
    base = run_baseline(wl)
    ndp = run_ndp(wl, tag_scheme=TagScheme.ENC_ONLY)
    ver = run_ndp(wl, tag_scheme=TagScheme.VER_ECC)
    column: Dict[str, Optional[float]] = {
        "unprotected non-NDP": 1.0,
        "unprotected NDP": base.total_ns / ndp.ndp_only_ns,
        "SecNDP": base.total_ns / ver.secndp_ns(aes),
    }
    # Paper scale: 500k patients x 10k genes... the DB is 40 MB per the
    # evaluation parameters (m=1024 genes) - inside CFL's EPC, so no
    # paging; both SGX rows are MEE-bandwidth-bound.
    ws = scale.analytics_patients * scale.analytics_genes * 4
    touched = wl.queries[0].pooling_factor * scale.analytics_genes * 4 * len(
        wl.queries
    )
    cfl_ns = sgx_slowdown(SGX_CFL, min(ws, SGX_CFL.epc_bytes), touched, base.total_ns)
    icl_ns = sgx_slowdown(SGX_ICL, ws, touched, base.total_ns)
    column["SGX-CFL"] = base.total_ns / cfl_ns
    column["SGX-ICL (no int. tree)"] = base.total_ns / icl_ns
    return "Data Analytics", column


def run_table3(
    scale: ExperimentScale = DEFAULT_SCALE,
    cpu: CpuModel = CpuModel(),
    n_aes_engines: int = 12,
    workers: Optional[int] = None,
) -> Table3Result:
    columns = MODELS + ["Data Analytics"]
    speedups: Dict[str, Dict[str, Optional[float]]] = {s: {} for s in SCENARIOS}

    model_cells = parallel_map(
        _table3_model_cell,
        [(name, scale, cpu, n_aes_engines) for name in MODELS],
        workers=workers,
    )
    analytics_cells = parallel_map(
        _table3_analytics_cell, [(scale, n_aes_engines)], workers=workers
    )
    for name, column in model_cells + analytics_cells:
        for scenario, value in column.items():
            speedups[scenario][name] = value

    return Table3Result(speedups=speedups, columns=columns)
