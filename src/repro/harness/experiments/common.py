"""Shared builders for the evaluation experiments."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...baselines.non_ndp import NonNdpResult, run_non_ndp
from ...ndp.packets import NdpWorkload
from ...ndp.simulator import NdpConfig, NdpRunResult, NdpSimulator
from ...ndp.verification import TagScheme
from ...workloads.dlrm import DlrmConfig, RMC_CONFIGS
from ...workloads.perf import analytics_workload, sls_workload
from ...workloads.traces import analytics_trace, production_trace, random_trace
from ..configs import ExperimentScale

__all__ = [
    "scaled_config",
    "build_sls_workload",
    "build_analytics_workload",
    "run_ndp",
    "run_baseline",
]


def scaled_config(name: str, scale: ExperimentScale) -> DlrmConfig:
    """A Table I configuration shrunk to the experiment scale."""
    return RMC_CONFIGS[name].scaled(scale.rows_per_table)


def build_sls_workload(
    config: DlrmConfig,
    scale: ExperimentScale,
    element_bytes: int = 4,
    rowwise_quant: bool = False,
    trace_kind: str = "random",
) -> NdpWorkload:
    """The SLS portion of one inference batch as an NDP workload.

    ``trace_kind`` selects the paper's two trace families: ``"random"``
    (fixed PF, uniform indices) or ``"production"`` (PF in [50, 100],
    skewed indices) - the latter gives packets the size diversity that
    makes the bottleneck fractions of Figs. 8/10 gradual.
    """
    if trace_kind == "production":
        traces = [
            production_trace(
                config.rows_per_table,
                scale.batch,
                pf_range=(
                    max(1, scale.pooling_factor * 5 // 8),
                    scale.pooling_factor * 5 // 4,
                ),
                seed=scale.seed * 1000 + t,
            )
            for t in range(config.n_tables)
        ]
    elif trace_kind == "random":
        traces = [
            random_trace(
                config.rows_per_table,
                scale.batch,
                scale.pooling_factor,
                seed=scale.seed * 1000 + t,
            )
            for t in range(config.n_tables)
        ]
    else:
        raise ValueError(f"unknown trace_kind {trace_kind!r}")
    return sls_workload(
        config,
        traces,
        element_bytes=element_bytes,
        rowwise_quant=rowwise_quant,
        batch=scale.batch,
    )


def build_analytics_workload(
    scale: ExperimentScale, element_bytes: int = 4
) -> NdpWorkload:
    trace = analytics_trace(
        scale.analytics_patients,
        scale.analytics_queries,
        scale.analytics_pf,
        seed=scale.seed,
    )
    return analytics_workload(
        scale.analytics_patients, scale.analytics_genes, trace, element_bytes
    )


def run_ndp(
    workload: NdpWorkload,
    ndp_ranks: int = 8,
    ndp_regs: int = 8,
    tag_scheme: TagScheme = TagScheme.ENC_ONLY,
) -> NdpRunResult:
    sim = NdpSimulator(
        NdpConfig(ndp_ranks=ndp_ranks, ndp_regs=ndp_regs, tag_scheme=tag_scheme)
    )
    return sim.run(workload)


def run_baseline(workload: NdpWorkload, page_seed: int = 0) -> NonNdpResult:
    return run_non_ndp(workload, page_seed=page_seed)
