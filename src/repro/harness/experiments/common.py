"""Shared builders for the evaluation experiments."""

from __future__ import annotations

import numpy as np

from ... import obs
from ...baselines.non_ndp import NonNdpResult, run_non_ndp
from ...core.params import SecNDPParams
from ...core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ...ndp.packets import NdpWorkload
from ...ndp.simulator import NdpConfig, NdpRunResult, NdpSimulator
from ...ndp.verification import TagScheme
from ...workloads.dlrm import DlrmConfig, RMC_CONFIGS
from ...workloads.perf import analytics_workload, sls_workload
from ...workloads.secure_sls import SecureEmbeddingStore
from ...workloads.traces import analytics_trace, production_trace, random_trace
from ..configs import ExperimentScale

__all__ = [
    "scaled_config",
    "build_sls_workload",
    "build_analytics_workload",
    "run_ndp",
    "run_baseline",
    "run_functional_shadow",
]


def scaled_config(name: str, scale: ExperimentScale) -> DlrmConfig:
    """A Table I configuration shrunk to the experiment scale."""
    return RMC_CONFIGS[name].scaled(scale.rows_per_table)


def build_sls_workload(
    config: DlrmConfig,
    scale: ExperimentScale,
    element_bytes: int = 4,
    rowwise_quant: bool = False,
    trace_kind: str = "random",
) -> NdpWorkload:
    """The SLS portion of one inference batch as an NDP workload.

    ``trace_kind`` selects the paper's two trace families: ``"random"``
    (fixed PF, uniform indices) or ``"production"`` (PF in [50, 100],
    skewed indices) - the latter gives packets the size diversity that
    makes the bottleneck fractions of Figs. 8/10 gradual.
    """
    if trace_kind == "production":
        traces = [
            production_trace(
                config.rows_per_table,
                scale.batch,
                pf_range=(
                    max(1, scale.pooling_factor * 5 // 8),
                    scale.pooling_factor * 5 // 4,
                ),
                seed=scale.seed * 1000 + t,
            )
            for t in range(config.n_tables)
        ]
    elif trace_kind == "random":
        traces = [
            random_trace(
                config.rows_per_table,
                scale.batch,
                scale.pooling_factor,
                seed=scale.seed * 1000 + t,
            )
            for t in range(config.n_tables)
        ]
    else:
        raise ValueError(f"unknown trace_kind {trace_kind!r}")
    return sls_workload(
        config,
        traces,
        element_bytes=element_bytes,
        rowwise_quant=rowwise_quant,
        batch=scale.batch,
    )


def build_analytics_workload(
    scale: ExperimentScale, element_bytes: int = 4
) -> NdpWorkload:
    trace = analytics_trace(
        scale.analytics_patients,
        scale.analytics_queries,
        scale.analytics_pf,
        seed=scale.seed,
    )
    return analytics_workload(
        scale.analytics_patients, scale.analytics_genes, trace, element_bytes
    )


def run_ndp(
    workload: NdpWorkload,
    ndp_ranks: int = 8,
    ndp_regs: int = 8,
    tag_scheme: TagScheme = TagScheme.ENC_ONLY,
) -> NdpRunResult:
    sim = NdpSimulator(
        NdpConfig(ndp_ranks=ndp_ranks, ndp_regs=ndp_regs, tag_scheme=tag_scheme)
    )
    with obs.span("harness.run_ndp", cat="harness"):
        return sim.run(workload)


def run_baseline(workload: NdpWorkload, page_seed: int = 0) -> NonNdpResult:
    with obs.span("harness.run_baseline", cat="harness"):
        return run_non_ndp(workload, page_seed=page_seed)


def run_functional_shadow(
    scale: ExperimentScale,
    seed: int = 0,
    workers: int = 0,
    prewarm: bool = False,
    hot_fraction=None,
):
    """Exercise the real crypto/protocol stack once, for attribution.

    The experiment drivers are timing models: they replay packet traces
    through the DDR4 simulator but never touch AES, the OTP cache or the
    field kernels.  When a run is collecting metrics, this shadow pass
    runs a small verified SLS batch through the *functional* stack
    (encrypt → offload → combine → verify) so the snapshot carries
    OTP-cache, limb-kernel and protocol-phase counters alongside the
    simulated traffic — the per-component accounting of Sec. V–VI.

    With ``prewarm`` the store gets hot-row tiering attached (seeded
    from a skewed :func:`production_trace`) and pads are pre-generated
    before serving.  The batch is always served in-process first — the
    whole point of the shadow pass is counters in *this* registry — and
    with ``workers >= 1`` it is additionally replayed through a
    :class:`~repro.parallel.engine.ParallelSlsEngine` so the returned
    dict carries the *fleet-wide* (store + workers) cache views.

    Returns ``{"otp": OtpCacheInfo, "tag": OtpCacheInfo}`` and publishes
    the same numbers as ``otp.cache.fleet.*`` / ``mac.tag_cache.fleet.*``
    gauges for the ``--stats`` snapshot.
    """
    from ...crypto.otp import publish_cache_gauges
    from ...parallel.engine import ParallelSlsEngine
    from ...tiering import TieringConfig

    with obs.span("harness.functional_shadow", cat="harness"):
        params = SecNDPParams(element_bits=32)
        processor = SecNDPProcessor(bytes(range(16)), params)
        device = UntrustedNdpDevice(params)
        store = SecureEmbeddingStore(processor, device, quantization="table")
        rng = np.random.default_rng(seed)
        n_rows, dim = 256, 16
        store.add_table("shadow", rng.normal(size=(n_rows, dim)))
        pf = min(8, scale.pooling_factor)
        batch = min(4, scale.batch)
        trace = production_trace(
            n_rows,
            batch,
            pf_range=(pf, max(pf, 2 * pf)),
            hot_fraction=0.1,
            hot_probability=0.9,
            seed=seed,
        )
        batch_rows = [list(ix) for ix in trace.indices]
        batch_weights = [[int(w) for w in ws] for ws in trace.weights]
        if prewarm:
            cfg = (
                TieringConfig(hot_fraction=hot_fraction)
                if hot_fraction
                else TieringConfig()
            )
            tiering = store.attach_tiering(cfg)
            tiering.seed_from_trace("shadow", trace)
            tiering.apply_sizing()
            tiering.prewarm_now()
        store.sls_many("shadow", batch_rows, batch_weights)
        # One repeat over the same rows so the pad caches report hits.
        store.sls_many("shadow", batch_rows[:1], batch_weights[:1])
        info = {"otp": store.cache_info(), "tag": store.tag_cache_info()}
        if workers >= 1:
            engine = ParallelSlsEngine(store, workers=workers)
            try:
                engine.sls_many("shadow", batch_rows, batch_weights)
                if engine.workers:
                    info = {
                        "otp": engine.cache_info(),
                        "tag": engine.tag_cache_info(),
                    }
            finally:
                engine.close()
        if prewarm:
            store.tiering.publish_gauges()
        publish_cache_gauges("otp.cache.fleet", info["otp"])
        publish_cache_gauges("mac.tag_cache.fleet", info["tag"])
        return info
