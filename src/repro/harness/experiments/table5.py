"""Table V - memory energy consumption of SecNDP (pJ/bit).

Renders the five-scenario coefficient table from
:mod:`repro.analysis.energy` and cross-checks the traffic asymmetry (IO
crossing the bus per pooled bit) against counted simulator events: the
simulated unprotected-NDP run must move ~``1/PF`` of the baseline's bus
bytes, which is exactly why the IO column loses its PF factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...analysis.energy import EnergyRow, normalized_table5, table5_rows
from ...parallel import parallel_map
from ..configs import DEFAULT_SCALE, ExperimentScale
from ..reporting import render_table
from .common import build_sls_workload, run_baseline, run_ndp, scaled_config

__all__ = ["Table5Result", "run_table5"]


@dataclass
class Table5Result:
    pf: int
    rows: list
    normalized: Dict[str, float]
    #: measured bus-traffic ratio (non-NDP bytes / NDP result bytes)
    measured_io_ratio: Optional[float]

    def render(self) -> str:
        out_rows = []
        for row in self.rows:
            out_rows.append(
                [
                    row.name,
                    f"{row.dimm_pj_per_bit:.2f}xPF",
                    (
                        f"{row.io_pj_per_bit_pf:.1f}xPF"
                        if row.io_pj_per_bit_pf
                        else f"{row.io_pj_per_bit_flat:.1f}"
                    ),
                    (
                        f"{row.engine_pj_per_bit_pf:.2f}xPF+{row.engine_pj_per_bit_flat:.2f}"
                        if row.engine_pj_per_bit_pf or row.engine_pj_per_bit_flat
                        else "0"
                    ),
                    f"{self.normalized[row.name]:.2f}%",
                ]
            )
        table = render_table(
            ["scenario", "DIMM", "DIMM IO", "SecNDP engine", f"Norm. (PF={self.pf})"],
            out_rows,
            title="Table V - memory energy (pJ/bit)",
        )
        if self.measured_io_ratio is not None:
            table += (
                f"\nmeasured bus-traffic ratio (non-NDP / NDP): "
                f"{self.measured_io_ratio:.1f}x (PF={self.pf})"
            )
        return table


def _table5_traffic_cell(item):
    """One simulator leg of the traffic cross-check; must stay picklable."""
    kind, workload = item
    if kind == "baseline":
        return kind, run_baseline(workload).total_lines
    return kind, run_ndp(workload).total_result_lines


def run_table5(
    scale: ExperimentScale = DEFAULT_SCALE,
    model: str = "RMC1-small",
    measure_traffic: bool = True,
    workers: Optional[int] = None,
) -> Table5Result:
    pf = scale.pooling_factor
    rows = table5_rows(pf=pf)
    normalized = normalized_table5(pf=pf)

    measured_ratio = None
    if measure_traffic:
        config = scaled_config(model, scale)
        workload = build_sls_workload(config, scale)
        legs = dict(
            parallel_map(
                _table5_traffic_cell,
                [("baseline", workload), ("ndp", workload)],
                workers=workers,
            )
        )
        if legs["ndp"]:
            measured_ratio = legs["baseline"] / legs["ndp"]
    return Table5Result(
        pf=pf, rows=rows, normalized=normalized, measured_io_ratio=measured_ratio
    )
