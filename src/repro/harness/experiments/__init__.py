"""Per-table / per-figure experiment drivers (see DESIGN.md Sec. 4)."""

from .figure7 import Figure7Result, run_figure7
from .figure8 import Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .figure10 import Figure10Result, run_figure10
from .figure11 import Figure11Result, run_figure11
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, run_table4
from .table5 import Table5Result, run_table5

__all__ = [
    "Figure7Result",
    "run_figure7",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
    "Figure11Result",
    "run_figure11",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "run_table4",
    "Table5Result",
    "run_table5",
]
