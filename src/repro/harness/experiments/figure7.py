"""Figure 7 - speedup of non-NDP / NDP / SecNDP-Enc vs #AES engines.

For each workload family (SLS 32-bit, SLS 8-bit quantized, data
analytics) and each NDP setting ``(NDP_rank, NDP_reg)``, reports the
speedup of:

* the unprotected non-NDP baseline (1x reference per family,
  32-bit layout),
* unprotected NDP (red bars),
* SecNDP-Enc at increasing AES-engine counts (green bars),
* for the quantized family, additionally the row-wise-quantization
  variant of baseline and unprotected NDP (``row_quan`` bars; SecNDP
  cannot use row-wise quantization efficiently - Sec. VI-A).

Expected shape: SecNDP-Enc climbs with engines and saturates at the
unprotected-NDP bar; quantization needs ~1/3 of the engines; analytics
has the highest speedup and does not benefit from more registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ndp.aes_engine import AesEngineModel
from ...parallel import parallel_map
from ..configs import DEFAULT_SCALE, ExperimentScale
from ..reporting import render_table
from .common import (
    build_analytics_workload,
    build_sls_workload,
    run_baseline,
    run_ndp,
    scaled_config,
)

__all__ = ["Figure7Result", "run_figure7", "NDP_SETTINGS", "AES_SWEEP"]

NDP_SETTINGS: List[Tuple[int, int]] = [(1, 1), (2, 2), (4, 4), (8, 8)]
AES_SWEEP: List[int] = [1, 2, 4, 8, 12]


@dataclass
class Figure7Result:
    """speedups[workload][(rank, reg)][scenario] -> speedup vs 32-bit non-NDP."""

    speedups: Dict[str, Dict[Tuple[int, int], Dict[str, float]]]

    def render(self) -> str:
        blocks = []
        for workload, settings in self.speedups.items():
            scenarios = list(next(iter(settings.values())).keys())
            rows = []
            for setting, values in settings.items():
                rows.append(
                    [f"rank={setting[0]} reg={setting[1]}"]
                    + [values[s] for s in scenarios]
                )
            blocks.append(
                render_table([workload] + scenarios, rows, title=f"-- {workload} --")
            )
        return "\n\n".join(blocks)


def _figure7_cell(item):
    """One (family, NDP setting) grid cell; must stay picklable."""
    label, workload, workload_row, rank, reg, aes_sweep, base, fixed = item
    run = run_ndp(workload, rank, reg)
    entry = dict(fixed)
    entry["NDP"] = base / run.ndp_only_ns
    if workload_row is not None:
        run_row = run_ndp(workload_row, rank, reg)
        entry["NDP(row_quan)"] = base / run_row.ndp_only_ns
    for n in aes_sweep:
        entry[f"SecNDP-Enc({n} AES)"] = base / run.secndp_ns(AesEngineModel(n))
    return label, (rank, reg), entry


def run_figure7(
    scale: ExperimentScale = DEFAULT_SCALE,
    model: str = "RMC1-small",
    settings: List[Tuple[int, int]] = None,
    aes_sweep: List[int] = None,
    workers: Optional[int] = None,
) -> Figure7Result:
    settings = settings or NDP_SETTINGS
    aes_sweep = aes_sweep or AES_SWEEP
    config = scaled_config(model, scale)

    # Baselines are shared across every cell of a family, so they run
    # once here; the (family x setting) grid then fans out.
    wl32 = build_sls_workload(config, scale, element_bytes=4)
    wl8 = build_sls_workload(config, scale, element_bytes=1)
    wl8_row = build_sls_workload(config, scale, element_bytes=1, rowwise_quant=True)
    wla = build_analytics_workload(scale)
    base32 = run_baseline(wl32).total_ns
    base8 = run_baseline(wl8).total_ns
    base8_row = run_baseline(wl8_row).total_ns
    basea = run_baseline(wla).total_ns

    quant_fixed = {
        "non-NDP": base32 / base8,
        "non-NDP(row_quan)": base32 / base8_row,
    }
    items = (
        [("SLS 32-bit", wl32, None, r, g, aes_sweep, base32, {"non-NDP": 1.0})
         for r, g in settings]
        + [("SLS 8-bit quantized", wl8, wl8_row, r, g, aes_sweep, base32, quant_fixed)
           for r, g in settings]
        + [("Data analytics", wla, None, r, g, aes_sweep, basea, {"non-NDP": 1.0})
           for r, g in settings]
    )
    speedups: Dict[str, Dict[Tuple[int, int], Dict[str, float]]] = {}
    for label, setting, entry in parallel_map(_figure7_cell, items, workers=workers):
        speedups.setdefault(label, {})[setting] = entry
    return Figure7Result(speedups=speedups)
