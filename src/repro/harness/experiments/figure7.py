"""Figure 7 - speedup of non-NDP / NDP / SecNDP-Enc vs #AES engines.

For each workload family (SLS 32-bit, SLS 8-bit quantized, data
analytics) and each NDP setting ``(NDP_rank, NDP_reg)``, reports the
speedup of:

* the unprotected non-NDP baseline (1x reference per family,
  32-bit layout),
* unprotected NDP (red bars),
* SecNDP-Enc at increasing AES-engine counts (green bars),
* for the quantized family, additionally the row-wise-quantization
  variant of baseline and unprotected NDP (``row_quan`` bars; SecNDP
  cannot use row-wise quantization efficiently - Sec. VI-A).

Expected shape: SecNDP-Enc climbs with engines and saturates at the
unprotected-NDP bar; quantization needs ~1/3 of the engines; analytics
has the highest speedup and does not benefit from more registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...ndp.aes_engine import AesEngineModel
from ..configs import DEFAULT_SCALE, ExperimentScale
from ..reporting import render_table
from .common import (
    build_analytics_workload,
    build_sls_workload,
    run_baseline,
    run_ndp,
    scaled_config,
)

__all__ = ["Figure7Result", "run_figure7", "NDP_SETTINGS", "AES_SWEEP"]

NDP_SETTINGS: List[Tuple[int, int]] = [(1, 1), (2, 2), (4, 4), (8, 8)]
AES_SWEEP: List[int] = [1, 2, 4, 8, 12]


@dataclass
class Figure7Result:
    """speedups[workload][(rank, reg)][scenario] -> speedup vs 32-bit non-NDP."""

    speedups: Dict[str, Dict[Tuple[int, int], Dict[str, float]]]

    def render(self) -> str:
        blocks = []
        for workload, settings in self.speedups.items():
            scenarios = list(next(iter(settings.values())).keys())
            rows = []
            for setting, values in settings.items():
                rows.append(
                    [f"rank={setting[0]} reg={setting[1]}"]
                    + [values[s] for s in scenarios]
                )
            blocks.append(
                render_table([workload] + scenarios, rows, title=f"-- {workload} --")
            )
        return "\n\n".join(blocks)


def run_figure7(
    scale: ExperimentScale = DEFAULT_SCALE,
    model: str = "RMC1-small",
    settings: List[Tuple[int, int]] = None,
    aes_sweep: List[int] = None,
) -> Figure7Result:
    settings = settings or NDP_SETTINGS
    aes_sweep = aes_sweep or AES_SWEEP
    config = scaled_config(model, scale)

    speedups: Dict[str, Dict[Tuple[int, int], Dict[str, float]]] = {}

    # -- SLS, 32-bit ------------------------------------------------------------
    wl32 = build_sls_workload(config, scale, element_bytes=4)
    base32 = run_baseline(wl32).total_ns
    fam: Dict[Tuple[int, int], Dict[str, float]] = {}
    for rank, reg in settings:
        run = run_ndp(wl32, rank, reg)
        entry = {"non-NDP": 1.0, "NDP": base32 / run.ndp_only_ns}
        for n in aes_sweep:
            entry[f"SecNDP-Enc({n} AES)"] = base32 / run.secndp_ns(AesEngineModel(n))
        fam[(rank, reg)] = entry
    speedups["SLS 32-bit"] = fam

    # -- SLS, 8-bit quantized ------------------------------------------------------
    wl8 = build_sls_workload(config, scale, element_bytes=1)
    wl8_row = build_sls_workload(config, scale, element_bytes=1, rowwise_quant=True)
    base8 = run_baseline(wl8).total_ns
    base8_row = run_baseline(wl8_row).total_ns
    fam = {}
    for rank, reg in settings:
        run = run_ndp(wl8, rank, reg)
        run_row = run_ndp(wl8_row, rank, reg)
        entry = {
            "non-NDP": base32 / base8,
            "non-NDP(row_quan)": base32 / base8_row,
            "NDP": base32 / run.ndp_only_ns,
            "NDP(row_quan)": base32 / run_row.ndp_only_ns,
        }
        for n in aes_sweep:
            entry[f"SecNDP-Enc({n} AES)"] = base32 / run.secndp_ns(AesEngineModel(n))
        fam[(rank, reg)] = entry
    speedups["SLS 8-bit quantized"] = fam

    # -- data analytics ---------------------------------------------------------------
    wla = build_analytics_workload(scale)
    basea = run_baseline(wla).total_ns
    fam = {}
    for rank, reg in settings:
        run = run_ndp(wla, rank, reg)
        entry = {"non-NDP": 1.0, "NDP": basea / run.ndp_only_ns}
        for n in aes_sweep:
            entry[f"SecNDP-Enc({n} AES)"] = basea / run.secndp_ns(AesEngineModel(n))
        fam[(rank, reg)] = entry
    speedups["Data analytics"] = fam

    return Figure7Result(speedups=speedups)
