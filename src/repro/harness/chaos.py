"""Chaos harness: evaluation workloads under fault plans (Sec. V-E3).

The paper proves detection (Thms. 1-2); this harness *measures* it, plus
the recovery behaviour the paper leaves to the enclave.  One run:

1. builds a golden (honest) store and a chaos store over identical
   tables, and replays the same fig7/table3-style SLS query stream
   (``random_trace`` with the scale's batch and pooling factor) through
   both;
2. corrupts the chaos store's untrusted memory up front per the plan's
   ``ciphertext_bit`` / ``tag_replay`` rates (the injector reports
   exactly which rows it damaged), and arms the plan's transient and
   worker faults around every chaos serve;
3. serves the chaos stream through the recovery ladder - optionally
   via :class:`~repro.parallel.engine.ParallelSlsEngine` workers - and
   compares every pooled vector bit-for-bit against the golden stream;
4. accounts per query: a query is *exposed* when it touched a corrupted
   row or a transient fault fired during its serve, and its fault is
   *detected* when the security-event audit log (:mod:`repro.obs.events`)
   records a ``verify_failure`` or ``quarantine_hit`` event whose row
   attribution matches the query.

Detection/recovery accounting is driven entirely from recorded audit
events: the harness installs an in-memory event log for the run when
none is configured (a CLI ``--events PATH`` sink is used as-is), matches
per-query events by (table, rows) attribution, and rebuilds the
aggregate quarantine/repair/re-encryption state by *replaying* the run's
events through a fresh :class:`RecoveryLog` — the same machinery the
persistent quarantine journal uses, so every chaos run exercises it.

Tag-covered faults must reach detection rate 1.0 and recovery rate 1.0
with zero mismatches (``tests/test_faults.py`` asserts this at the
acceptance rates); the run's cost shows up as the chaos/golden wall-time
ratio and in the ``recovery.*`` counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.params import SecNDPParams
from ..core.protocol import SecNDPProcessor, UntrustedNdpDevice
from ..faults import (
    TRANSIENT_FAULTS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RecoveryPolicy,
)
from ..faults.recovery import RecoveryLog
from ..parallel.engine import ParallelSlsEngine
from ..workloads.secure_sls import SecureEmbeddingStore
from ..workloads.traces import random_trace
from .configs import ExperimentScale

__all__ = [
    "ChaosResult",
    "ChaosSweepResult",
    "default_chaos_plan",
    "parse_sweep_spec",
    "run_chaos",
    "run_chaos_sweep",
]

_KEY = bytes(range(16))


def default_chaos_plan(fault_rate: float = 1e-3, seed: int = 2022) -> FaultPlan:
    """Memory faults at ``fault_rate`` plus low-rate transient/worker faults.

    ``fault_rate`` is the per-element (per-tag) corruption probability of
    the acceptance scenario; the transient rates mirror the ``ci-default``
    preset so one plan exercises every rung of the ladder.
    """
    return FaultPlan(
        name=f"chaos-{fault_rate:g}",
        seed=seed,
        rates={
            FaultKind.CIPHERTEXT_BIT: fault_rate,
            FaultKind.TAG_REPLAY: fault_rate,
            FaultKind.RESULT_SKEW: 0.02,
            FaultKind.TAG_TAMPER: 0.01,
            FaultKind.VERSION_FLIP: 0.005,
            FaultKind.WORKER_RAISE: 0.02,
        },
    )


@dataclass(frozen=True)
class ChaosResult:
    """Detection / recovery accounting of one chaos run."""

    plan: str
    workers: int
    tables: int
    queries: int
    exposed: int            #: queries that touched injected damage
    detected: int           #: exposed queries whose fault was detected
    mismatched: int         #: queries whose result diverged from golden
    exposed_mismatched: int
    injected: Dict[str, int]
    resolutions: Dict[str, int]
    quarantined: int
    repairs: int
    reencryptions: int
    golden_s: float
    chaos_s: float
    #: audit events recorded during the serve, by kind (repro.obs.events)
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float:
        """Over exposed queries; Thms. 1-2 bound this at 1.0 for
        tag-covered faults."""
        return self.detected / self.exposed if self.exposed else 1.0

    @property
    def recovery_rate(self) -> float:
        """Fraction of exposed queries still served bit-exactly."""
        if not self.exposed:
            return 1.0
        return 1.0 - self.exposed_mismatched / self.exposed

    @property
    def overhead(self) -> float:
        """Chaos wall time relative to the honest serve (0 = free)."""
        if self.golden_s <= 0:
            return 0.0
        return self.chaos_s / self.golden_s - 1.0

    def render(self) -> str:
        inj = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items())) or "none"
        res = ", ".join(
            f"{k}={v}" for k, v in sorted(self.resolutions.items())
        ) or "none"
        evs = ", ".join(
            f"{k}={v}" for k, v in sorted(self.events.items())
        ) or "none"
        lines = [
            f"plan {self.plan} | workers {self.workers} | "
            f"{self.tables} tables, {self.queries} queries",
            f"injected: {inj}",
            f"resolutions: {res}",
            f"audit events: {evs}",
            f"exposed {self.exposed}, detected {self.detected} "
            f"(detection rate {self.detection_rate:.3f})",
            f"recovered {self.exposed - self.exposed_mismatched}/{self.exposed} "
            f"(recovery rate {self.recovery_rate:.3f}), "
            f"mismatched {self.mismatched}",
            f"quarantined rows {self.quarantined}, repairs {self.repairs}, "
            f"re-encryptions {self.reencryptions}",
            f"latency: golden {self.golden_s * 1e3:.1f} ms, "
            f"chaos {self.chaos_s * 1e3:.1f} ms "
            f"(overhead {self.overhead * 100:+.1f}%)",
        ]
        return "\n".join(lines)


def _transient_query_ids(events, name: str) -> set:
    """Batch-local query indices whose serve saw a transient fault.

    Context labels are ``"<table>:q<idx>:a<attempt>"`` for per-query
    serves (the batch-level ``"<table>:batch"`` label marks the
    optimistic pass, whose failure degrades to labelled per-query
    serves, so per-query labels are the authoritative exposure record).
    """
    ids = set()
    prefix = f"{name}:q"
    for ev in events:
        if ev.kind in TRANSIENT_FAULTS and ev.context.startswith(prefix):
            ids.add(int(ev.context[len(prefix):].split(":", 1)[0]))
    return ids


def run_chaos(
    scale: ExperimentScale,
    plan: Optional[FaultPlan] = None,
    fault_rate: float = 1e-3,
    workers: int = 0,
    n_tables: int = 2,
    dim: int = 32,
    rows_per_table: Optional[int] = None,
    seed: int = 7,
    policy: Optional[RecoveryPolicy] = None,
    task_timeout: Optional[float] = None,
    prewarm: bool = False,
    hot_fraction: Optional[float] = None,
) -> ChaosResult:
    """One golden-vs-chaos replay; see the module docstring for the shape.

    ``rows_per_table`` defaults to the scale's table size capped at 1024
    (the harness runs the *functional* stack - real AES, real tags - so
    chaos runs stay CI-sized).  ``policy`` defaults to a ladder with
    re-encryption disabled, which keeps the injector's corruption map
    valid for the whole stream and makes the exposure accounting exact;
    pass an explicit policy to exercise rung 4 end-to-end.

    ``prewarm`` attaches hot-row tiering to the chaos store (sized by
    ``hot_fraction`` when given), seeds the tracker from the query
    stream, and pre-generates hot pads before serving — faults then land
    on a store whose caches carry prewarmed state, which is exactly the
    stale-pad hazard the version-keyed invalidation protocol must absorb.
    """
    if plan is None:
        plan = default_chaos_plan(fault_rate)
    if rows_per_table is None:
        rows_per_table = min(scale.rows_per_table, 1024)
    if policy is None:
        policy = RecoveryPolicy(backoff_base_s=1e-4, reencrypt_after=None)

    params = SecNDPParams()
    rng = np.random.default_rng(seed)
    tables = {
        f"t{i}": rng.normal(size=(rows_per_table, dim)) for i in range(n_tables)
    }

    def build(recovery=None, injector=None) -> SecureEmbeddingStore:
        processor = SecNDPProcessor(_KEY, params)
        device = UntrustedNdpDevice(params)
        store = SecureEmbeddingStore(
            processor, device, recovery=recovery, fault_injector=injector
        )
        for name in sorted(tables):
            store.add_table(name, tables[name])
        return store

    batches: List[Tuple[str, List[List[int]], List[List[int]]]] = []
    for i, name in enumerate(sorted(tables)):
        trace = random_trace(
            rows_per_table, scale.batch, scale.pooling_factor, seed=seed * 100 + i
        )
        batches.append(
            (
                name,
                [list(ix) for ix in trace.indices],
                [[int(w) for w in ws] for ws in trace.weights],
            )
        )

    golden = build()
    with obs.span("chaos.golden", cat="harness"):
        started = time.perf_counter()
        expected = {
            name: golden.sls_many(name, rows, ws) for name, rows, ws in batches
        }
        golden_s = time.perf_counter() - started

    injector = FaultInjector(plan)
    chaos = build(recovery=policy, injector=injector)
    corrupted = injector.corrupt_device(chaos.device, sorted(tables))

    if prewarm:
        from ..tiering import TieringConfig

        cfg = (
            TieringConfig(hot_fraction=hot_fraction)
            if hot_fraction
            else TieringConfig()
        )
        tiering = chaos.attach_tiering(cfg)
        for name, rows_list, _ in batches:
            for rows in rows_list:
                tiering.observe(name, rows)
        tiering.apply_sizing()
        tiering.prewarm_now()

    # The engine snapshots ciphertext into shared arenas at pool start,
    # so it is built after the corruption - workers then compute over the
    # damaged bytes exactly as a compromised DIMM would.
    engine = (
        ParallelSlsEngine(chaos, workers=workers, task_timeout=task_timeout)
        if workers >= 1
        else None
    )
    serve = engine.sls_many if engine is not None else chaos.sls_many

    log = chaos.recovery_log
    # Detection is proven from the audit log, not ad-hoc counters: every
    # ladder step emits a typed event with (table, rows) attribution, and
    # a query counts as detected iff such an event names exactly its
    # rows.  Reuse an installed log (e.g. the CLI's --events sink) so the
    # run journals to disk; otherwise install an in-memory one for the
    # run and uninstall it afterwards.
    own_log = obs.event_log() is None
    if own_log:
        obs.enable_events()
    event_log = obs.event_log()
    ev_start = len(event_log)
    run_events: List[obs.SecurityEvent] = []
    queries = mismatched = exposed = detected = exposed_mismatched = 0
    started = time.perf_counter()
    try:
        with obs.span("chaos.serve", cat="harness"):
            for name, rows_list, weights_list in batches:
                n_events = len(injector.events)
                ev_mark = len(event_log)
                got = serve(name, rows_list, weights_list)
                detected_rows = {
                    tuple(ev.rows)
                    for ev in event_log.events()[ev_mark:]
                    if ev.table == name
                    and ev.kind in (obs.VERIFY_FAILURE, obs.QUARANTINE_HIT)
                }
                transient_ids = _transient_query_ids(
                    injector.events[n_events:], name
                )
                bad_rows = corrupted.get(name, set())
                for i, rows in enumerate(rows_list):
                    queries += 1
                    ok = bool(np.array_equal(got[i], expected[name][i]))
                    if not ok:
                        mismatched += 1
                    if not (bad_rows.intersection(rows) or i in transient_ids):
                        continue
                    exposed += 1
                    if tuple(int(r) for r in rows) in detected_rows:
                        detected += 1
                    if not ok:
                        exposed_mismatched += 1
    finally:
        run_events = event_log.events()[ev_start:]
        if own_log:
            obs.disable_events()
        # Fleet-wide pad-cache views must be captured before the pool is
        # torn down (workers report cache state alongside task results).
        from ..crypto.otp import publish_cache_gauges

        if engine is not None:
            publish_cache_gauges("otp.cache.fleet", engine.cache_info())
            publish_cache_gauges("mac.tag_cache.fleet", engine.tag_cache_info())
            engine.close()
        else:
            publish_cache_gauges("otp.cache.fleet", chaos.cache_info())
            publish_cache_gauges("mac.tag_cache.fleet", chaos.tag_cache_info())
        if prewarm and chaos.tiering is not None:
            chaos.tiering.publish_gauges()
    chaos_s = time.perf_counter() - started

    # Rebuild the aggregate recovery state by replaying the run's audit
    # events through a fresh log — the exact code path a restarted store
    # uses to reload a persistent quarantine journal, exercised here on
    # every chaos run (and cross-checkable against chaos.recovery_log).
    replayed = RecoveryLog()
    replayed.replay_events(run_events)
    event_counts: Dict[str, int] = {}
    for ev in run_events:
        event_counts[ev.kind] = event_counts.get(ev.kind, 0) + 1

    result = ChaosResult(
        plan=plan.name,
        workers=workers,
        tables=n_tables,
        queries=queries,
        exposed=exposed,
        detected=detected,
        mismatched=mismatched,
        exposed_mismatched=exposed_mismatched,
        injected=injector.event_counts(),
        resolutions=log.counts_by_resolution(),
        quarantined=sum(len(v) for v in replayed.quarantined.values()),
        repairs=sum(replayed.repairs.values()),
        reencryptions=sum(replayed.reencryptions.values()),
        golden_s=golden_s,
        chaos_s=chaos_s,
        events=event_counts,
    )
    obs.gauge("chaos.detection_rate", result.detection_rate)
    obs.gauge("chaos.recovery_rate", result.recovery_rate)
    obs.gauge("chaos.overhead", result.overhead)
    obs.inc("chaos.queries", queries)
    obs.inc("chaos.exposed", exposed)
    obs.inc("chaos.mismatched", mismatched)
    for kind, n in sorted(event_counts.items()):
        obs.inc(f"chaos.events.{kind}", n)
    return result

def parse_sweep_spec(spec: str, points_per_decade: int = 1) -> List[float]:
    """Parse a fault-rate grid spec into an ascending list of rates.

    ``"1e-5..1e-2"`` is a log-spaced grid between the endpoints
    (``points_per_decade`` rates per decade, endpoints included);
    ``"1e-4,5e-4,1e-3"`` is an explicit comma list.
    """
    spec = spec.strip()
    try:
        if ".." in spec:
            lo_s, hi_s = spec.split("..", 1)
            lo, hi = float(lo_s), float(hi_s)
            if lo <= 0 or hi <= 0 or hi < lo:
                raise ValueError("sweep endpoints must be positive and ordered")
            decades = np.log10(hi / lo)
            num = max(2, int(round(decades * points_per_decade)) + 1)
            rates = np.logspace(np.log10(lo), np.log10(hi), num=num)
            return [float(r) for r in rates]
        rates = [float(tok) for tok in spec.split(",") if tok.strip()]
        if not rates or any(r <= 0 for r in rates):
            raise ValueError("sweep rates must be positive")
        return sorted(rates)
    except ValueError as exc:
        raise ValueError(
            f"bad sweep spec {spec!r} (want '1e-5..1e-2' or '1e-4,1e-3'): {exc}"
        ) from None


@dataclass(frozen=True)
class ChaosSweepResult:
    """A fault-rate grid of chaos runs (``repro chaos --sweep``)."""

    rates: List[float]
    results: List[ChaosResult]

    @property
    def passed(self) -> bool:
        """Every grid point detected and recovered everything exactly."""
        return all(
            r.detection_rate == 1.0 and r.recovery_rate == 1.0 and r.mismatched == 0
            for r in self.results
        )

    def render(self) -> str:
        header = (
            f"{'fault rate':>12} {'exposed':>8} {'detect':>7} "
            f"{'recover':>8} {'mismatch':>9} {'overhead':>9}  events"
        )
        lines = [header, "-" * len(header)]
        for rate, res in zip(self.rates, self.results):
            evs = ", ".join(
                f"{k.split('.')[-1]}={v}"
                for k, v in sorted(res.events.items())
            ) or "-"
            lines.append(
                f"{rate:>12.1e} {res.exposed:>8d} {res.detection_rate:>7.3f} "
                f"{res.recovery_rate:>8.3f} {res.mismatched:>9d} "
                f"{res.overhead * 100:>+8.1f}%  {evs}"
            )
        lines.append(
            f"sweep verdict: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.rates)} grid points)"
        )
        return "\n".join(lines)


def run_chaos_sweep(
    scale: ExperimentScale,
    rates: List[float],
    workers: int = 0,
    seed: int = 20222,
    **kwargs,
) -> ChaosSweepResult:
    """Run :func:`run_chaos` across a fault-rate grid.

    Each grid point gets its own :func:`default_chaos_plan` at that rate
    (seed offset by the grid index so points are independent draws) and
    reports detection rate, recovery rate and latency overhead; the
    aggregate lands in ``chaos.sweep.*`` gauges keyed by rate.
    """
    results: List[ChaosResult] = []
    for i, rate in enumerate(rates):
        plan = default_chaos_plan(rate, seed=seed + i)
        result = run_chaos(
            scale, plan=plan, fault_rate=rate, workers=workers, **kwargs
        )
        results.append(result)
        obs.gauge(f"chaos.sweep.detection_rate.{rate:g}", result.detection_rate)
        obs.gauge(f"chaos.sweep.recovery_rate.{rate:g}", result.recovery_rate)
        obs.gauge(f"chaos.sweep.overhead.{rate:g}", result.overhead)
    sweep = ChaosSweepResult(rates=list(rates), results=results)
    obs.gauge("chaos.sweep.points", float(len(rates)))
    obs.gauge("chaos.sweep.passed", 1.0 if sweep.passed else 0.0)
    return sweep
