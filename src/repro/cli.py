"""Command-line interface: regenerate any table/figure from a shell.

Usage::

    python -m repro list
    python -m repro table3 [--scale smoke|default|paper]
    python -m repro fig7 --scale default
    python -m repro all --scale smoke

Each experiment prints the same rows/series the paper reports (see
DESIGN.md Sec. 4 for the experiment index).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from .harness.configs import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE, ExperimentScale
from .harness.export import export_results
from .harness.experiments import (
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = ["main", "EXPERIMENTS"]

_SCALES: Dict[str, ExperimentScale] = {
    "smoke": SMOKE_SCALE,
    "default": DEFAULT_SCALE,
    "paper": PAPER_SCALE,
}

#: name -> (description, runner taking a scale)
EXPERIMENTS: Dict[str, tuple] = {
    "table3": (
        "end-to-end speedup vs baselines and SGX (Table III)",
        lambda scale: run_table3(scale),
    ),
    "table4": (
        "LogLoss under quantization schemes (Table IV)",
        lambda scale: run_table4(),
    ),
    "table5": (
        "memory energy pJ/bit (Table V)",
        lambda scale: run_table5(scale),
    ),
    "fig7": (
        "speedup vs #AES engines per NDP setting (Figure 7)",
        lambda scale: run_figure7(scale),
    ),
    "fig8": (
        "% packets decryption-bound, Enc-only (Figure 8)",
        lambda scale: run_figure8(scale),
    ),
    "fig9": (
        "verification-scheme speedups (Figure 9)",
        lambda scale: run_figure9(scale),
    ),
    "fig10": (
        "% packets decryption-bound incl. verification (Figure 10)",
        lambda scale: run_figure10(scale),
    ),
    "fig11": (
        "end-to-end breakdown + batch scaling (Figure 11)",
        lambda scale: run_figure11(scale),
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SecNDP (HPCA 2022) reproduction - experiment runner",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' to enumerate, 'all' for everything)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON bundle to PATH",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    scale = _SCALES[args.scale]
    collected = {}
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"== {name}: {description} (scale={scale.name}) ==")
        started = time.time()
        result = runner(scale)
        collected[name] = result
        print(result.render())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    if args.json:
        path = export_results(collected, args.json)
        print(f"results written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
