"""Command-line interface: regenerate any table/figure from a shell.

Usage::

    python -m repro list
    python -m repro table3 [--scale smoke|default|paper]
    python -m repro fig7 --scale default
    python -m repro all --scale smoke
    python -m repro table3 --scale smoke --stats --trace trace.json
    python -m repro fig7 --scale paper --workers 4
    python -m repro chaos --fault-rate 1e-3 --workers 2
    python -m repro chaos --plan ci-default
    python -m repro table3 --scale smoke --stats --prewarm --hot-fraction 0.05
    python -m repro obs report --scale smoke --slo "sls.batch.p99<50ms"
    python -m repro obs report --prom metrics.prom --events audit.jsonl
    python -m repro chaos --events audit.jsonl --slo "verify.failure_rate<0.2"
    python -m repro chaos --sweep 1e-5..1e-2
    python -m repro node node0 --port 7001
    python -m repro cluster --nodes 3 --scale smoke
    python -m repro bench-cluster --nodes 3 --json cluster.json

Each experiment prints the same rows/series the paper reports (see
DESIGN.md Sec. 4 for the experiment index).  ``--stats`` prints the
observability registry snapshot after the run and ``--trace PATH``
writes a Chrome/Perfetto trace of the phase spans (DESIGN.md Sec. 9).
``--workers N`` fans the experiment grid across N processes
(DESIGN.md Sec. 10); the default comes from ``SECNDP_WORKERS`` or the
CPU count, and ``--workers 0`` forces the in-process path.
``--prewarm`` attaches hot-row tiering (DESIGN.md Sec. 12) to the
functional serving paths and pre-generates hot-set pads before queries;
``--hot-fraction F`` caps the hot set, and ``--stats`` then also prints
the fleet-wide pad-cache hit rates (store + pool workers).

Telemetry (DESIGN.md Sec. 13): ``obs report`` runs a functional serving
pass and prints percentile tables, SLO budget status and recorded
security events; ``--slo SPEC`` (repeatable, comma-separable) adds
objectives like ``sls.batch.p99<5ms@2%`` or ``verify.failure_rate<0.01``
and makes the command exit 1 when one is out of budget; ``--events
PATH`` journals every security event as one JSON line to PATH (any
command); ``--prom PATH`` writes the metrics snapshot in Prometheus text
exposition format; ``--metrics PATH`` reports over a previously saved
snapshot JSON instead of running anything.

Unknown experiment names and invalid scales exit with status 2 and a
one-line error, so shell scripts and CI steps fail fast without a
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from . import kernels, obs
from .errors import ConfigurationError
from .faults import FaultPlan
from .harness.chaos import (
    default_chaos_plan,
    parse_sweep_spec,
    run_chaos,
    run_chaos_sweep,
)
from .harness.configs import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE, ExperimentScale
from .parallel import default_workers
from .harness.experiments import (
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_table3,
    run_table4,
    run_table5,
)
from .harness.experiments.common import run_functional_shadow
from .harness.export import export_results

__all__ = ["main", "EXPERIMENTS"]

_SCALES: Dict[str, ExperimentScale] = {
    "smoke": SMOKE_SCALE,
    "default": DEFAULT_SCALE,
    "paper": PAPER_SCALE,
}

#: name -> (description, runner taking a scale and a worker count)
EXPERIMENTS: Dict[str, tuple] = {
    "table3": (
        "end-to-end speedup vs baselines and SGX (Table III)",
        lambda scale, workers=None: run_table3(scale, workers=workers),
    ),
    "table4": (
        "LogLoss under quantization schemes (Table IV)",
        lambda scale, workers=None: run_table4(workers=workers),
    ),
    "table5": (
        "memory energy pJ/bit (Table V)",
        lambda scale, workers=None: run_table5(scale, workers=workers),
    ),
    "fig7": (
        "speedup vs #AES engines per NDP setting (Figure 7)",
        lambda scale, workers=None: run_figure7(scale, workers=workers),
    ),
    "fig8": (
        "% packets decryption-bound, Enc-only (Figure 8)",
        lambda scale, workers=None: run_figure8(scale, workers=workers),
    ),
    "fig9": (
        "verification-scheme speedups (Figure 9)",
        lambda scale, workers=None: run_figure9(scale, workers=workers),
    ),
    "fig10": (
        "% packets decryption-bound incl. verification (Figure 10)",
        lambda scale, workers=None: run_figure10(scale, workers=workers),
    ),
    "fig11": (
        "end-to-end breakdown + batch scaling (Figure 11)",
        lambda scale, workers=None: run_figure11(scale, workers=workers),
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SecNDP (HPCA 2022) reproduction - experiment runner",
    )
    # Experiment and scale are validated by hand in main() so that typos
    # produce a one-line error + exit code 2 instead of a traceback.
    parser.add_argument(
        "experiment",
        help="experiment to run ('list' to enumerate, 'all' for everything, "
        "'obs' for telemetry commands)",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="sub-action for 'obs' (currently: report)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        help="experiment scale: smoke | default | paper (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON bundle to PATH",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the experiment grid "
            "(default: SECNDP_WORKERS if set, else the CPU count; "
            "0 = run everything in-process)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect metrics during the run and print the registry snapshot",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=1e-3,
        metavar="P",
        help="chaos only: per-element ciphertext/tag corruption rate "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="SPEC",
        help="chaos only: fault plan - a preset name (ci-default, "
        "memory-storm, paper-5e3, chaos-cluster) or 'kind=rate,...'; "
        "overrides --fault-rate",
    )
    parser.add_argument(
        "--sweep",
        default=None,
        metavar="SPEC",
        help="chaos only: run a fault-rate grid instead of a single rate - "
        "'1e-5..1e-2' (log-spaced decades) or '1e-4,1e-3' (explicit); "
        "prints detection/recovery/overhead per grid point",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=3,
        metavar="N",
        help="cluster/bench-cluster: number of NDP node processes "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace of the run's phase spans to PATH",
    )
    parser.add_argument(
        "--prewarm",
        action="store_true",
        help="attach hot-row tiering and pre-generate OTP/tag pads for the "
        "hot set before serving (chaos and functional-shadow paths)",
    )
    parser.add_argument(
        "--hot-fraction",
        type=float,
        default=None,
        metavar="F",
        help="cap the tiering hot set at F of each table's rows "
        "(default: coverage-driven)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="service-level objective, e.g. 'sls.batch.p99<5ms@2%%' or "
        "'verify.failure_rate<0.01' (repeatable; comma-separable); any "
        "objective out of budget makes the command exit 1",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="journal every security event (verification failures, "
        "recovery-ladder steps, quarantines, pool lifecycle) as one JSON "
        "line appended to PATH",
    )
    parser.add_argument(
        "--prom",
        metavar="PATH",
        default=None,
        help="write the metrics snapshot in Prometheus text exposition "
        "format to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="obs report only: report over a previously saved snapshot "
        "JSON instead of running a serving pass",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve only: bind address (default: %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve only: TCP port (default: 0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="serve/bench-serve: coalescing cap per executed batch "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        metavar="N",
        help="serve/bench-serve: pending-request cap before admission "
        "control sheds load (default: %(default)s)",
    )
    parser.add_argument(
        "--max-wait-us",
        type=float,
        default=5000.0,
        metavar="US",
        help="serve/bench-serve: upper bound on the adaptive batch window "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--serve-slo",
        default=None,
        metavar="SPEC",
        help="serve/bench-serve: latency objective driving admission "
        "control (default: 'serve.latency.p99 < 50ms @ 5%%')",
    )
    parser.add_argument(
        "--save-metrics",
        metavar="PATH",
        default=None,
        help="bench-serve: write the metrics snapshot JSON to PATH "
        "(replayable via 'repro obs report --metrics PATH')",
    )
    parser.add_argument(
        "--kernel-tier",
        metavar="TIER",
        default=None,
        help="kernel tier for the limb-field/AES hot paths: auto "
        "(default; compiled backend when available, else numpy), native "
        "(require a compiled backend), numpy, or scalar (bit-exact "
        "PrimeField oracle); overrides SECNDP_KERNEL_TIER",
    )
    return parser


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _journal_counts(path: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in obs.read_events(path):
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def _write_prometheus(path: str, snap: dict, event_counts) -> None:
    text = obs.to_prometheus(snap, event_counts=event_counts)
    obs.validate_prometheus_text(text)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"prometheus metrics written to {path}")


def _print_slo(statuses) -> bool:
    """Print SLO status lines; True iff any objective is out of budget."""
    print("== slo ==")
    for status in statuses:
        print(f"  {status.describe()}")
    worst = max((s.state for s in statuses), default=0)
    verdict = {0: "healthy", 1: "DEGRADED", 2: "CRITICAL"}[worst]
    print(f"  overall: {verdict} (slo.degraded={worst})")
    return any(not s.met for s in statuses)


def _obs_report(args, scale: ExperimentScale, slo_specs) -> int:
    """``repro obs report``: serve, then summarise telemetry + SLOs."""
    workers = args.workers if args.workers is not None else default_workers()
    if workers < 0:
        return _fail(f"--workers must be >= 0, got {workers}")

    event_counts = None
    if args.metrics is not None:
        # Offline mode: report over a saved snapshot (and, with --events,
        # a recorded journal) without running anything.
        try:
            with open(args.metrics, "r", encoding="utf-8") as fh:
                snap = json.load(fh)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot load snapshot {args.metrics!r}: {exc}")
        if args.events is not None:
            try:
                event_counts = _journal_counts(args.events)
            except OSError as exc:
                return _fail(f"cannot load event journal {args.events!r}: {exc}")
    else:
        was_enabled = obs.enabled()
        own_events = obs.event_log() is None
        if args.events is not None:
            obs.enable_events(args.events)
        elif own_events:
            obs.enable_events()
        obs.enable()
        kernels.publish()
        try:
            with obs.span("experiment.obs_report", cat="harness"):
                run_functional_shadow(
                    scale,
                    workers=workers,
                    prewarm=args.prewarm,
                    hot_fraction=args.hot_fraction,
                )
            snap = obs.snapshot(include_samples=True)
            log = obs.event_log()
            if log is not None:
                event_counts = log.counts_by_kind()
        finally:
            if not was_enabled:
                obs.disable()
            if args.events is not None or own_events:
                obs.disable_events()

    statuses = obs.SloTracker(slo_specs).evaluate(snap)
    print(obs.format_report(snap, statuses=statuses, event_counts=event_counts))
    if args.prom is not None:
        _write_prometheus(args.prom, snap, event_counts)
    if args.events is not None and args.metrics is None:
        print(f"security-event journal appended to {args.events}")
    return 1 if any(not s.met for s in statuses) else 0


def _admission_config(args):
    """Build the serve/bench-serve admission config from CLI flags."""
    from .serve import DEFAULT_SERVE_SLO, AdmissionConfig

    return AdmissionConfig(
        slo=args.serve_slo or DEFAULT_SERVE_SLO,
        max_queue=args.max_queue,
        max_wait_us=args.max_wait_us,
    )


def _serve_cmd(args, scale: ExperimentScale) -> int:
    """``repro serve``: demo store behind the TCP front-end until SIGINT."""
    import asyncio

    from .parallel import ParallelSlsEngine
    from .serve import SlsServer
    from .serve.bench import SIZES, _build_store

    workers = args.workers if args.workers is not None else 0
    if workers < 0:
        return _fail(f"--workers must be >= 0, got {workers}")
    sizes = SIZES.get(scale.name, SIZES["default"])
    print(
        f"building demo store ({sizes['n_rows']} x {sizes['dim']}, "
        f"scale={scale.name}, workers={workers}) ..."
    )
    store = _build_store(sizes["n_rows"], sizes["dim"], seed=11)
    engine = ParallelSlsEngine(store, workers=workers) if workers > 0 else None

    async def run():
        try:
            server = SlsServer(
                store,
                engine=engine,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                admission=_admission_config(args),
            )
            await server.start()
            print(
                f"serving table 'emb' on {server.host}:{server.port} "
                f"(max_batch={args.max_batch}, max_queue={args.max_queue}); "
                f"Ctrl-C drains and exits"
            )
            await server.serve_forever()
            stats = server.stats()
            print(
                f"drained: {int(stats['requests'])} requests, "
                f"{int(stats['batches'])} batches, "
                f"{int(stats['admission.shed'])} shed"
            )
        finally:
            if engine is not None:
                engine.close()

    try:
        asyncio.run(run())
    except ConfigurationError as exc:
        return _fail(str(exc))
    return 0


def _bench_serve_cmd(args, scale: ExperimentScale, slo_specs) -> int:
    """``repro bench-serve``: QPS legs + overload + TCP smoke at a scale."""
    from .parallel import resolve_workers
    from .serve.bench import (
        SIZES,
        run_overload_scenario,
        run_serve_bench,
        run_tcp_smoke,
    )

    workers = resolve_workers(args.workers)
    sizes = SIZES.get(scale.name, SIZES["default"])
    collect = (
        args.stats
        or args.slo is not None
        or args.prom is not None
        or args.save_metrics is not None
    )
    was_enabled = obs.enabled()
    own_events = obs.event_log() is None
    if collect:
        obs.enable()
        kernels.publish()
        if args.events is not None:
            obs.enable_events(args.events)
        elif own_events:
            obs.enable_events()
    slo_failed = False
    print(f"== bench-serve (scale={scale.name}, workers={workers}) ==")
    started = time.time()
    try:
        report = run_serve_bench(
            sizes["n_rows"],
            sizes["dim"],
            sizes["n_queries"],
            tuple(sizes["pf_range"]),
            max_batch=args.max_batch,
        )
        print(
            f"throughput: sequential {report['sequential_qps']:.0f} qps, "
            f"coalesced {report['coalesced_qps']:.0f} qps -> "
            f"{report['qps_speedup']:.2f}x ({report['batches']} batches, "
            f"fill {report['mean_batch_fill']:.1f}, "
            f"dedupe {report['dedupe_ratio']:.2f}, bit-identical)"
        )
        overload = run_overload_scenario(max_queue=min(8, args.max_queue))
        print(
            f"overload: burst {overload['burst']} -> {overload['served_ok']} "
            f"served, {overload['overloaded']} overloaded (typed), burn "
            f"{overload['burn_rate']:.2f}, p99 within SLO: "
            f"{overload['p99_within_slo']}"
        )
        tcp = run_tcp_smoke(workers=workers)
        print(
            f"tcp smoke: {tcp['queries']} queries / {tcp['clients']} clients "
            f"/ {tcp['workers']} workers -> {tcp['qps']:.0f} qps "
            f"({tcp['batches']} batches, bit-identical)"
        )
        print(f"[bench-serve finished in {time.time() - started:.1f}s]")
        if args.json:
            bundle = {
                "scale": scale.name,
                "throughput": report,
                "overload": overload,
                "tcp": tcp,
            }
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(bundle, fh, indent=2, sort_keys=True)
            print(f"results written to {args.json}")
        if args.stats:
            print("== metrics ==")
            print(obs.format_snapshot(obs.snapshot()))
        if collect:
            snap = obs.snapshot(include_samples=True)
            log = obs.event_log()
            event_counts = log.counts_by_kind() if log is not None else None
            if args.save_metrics is not None:
                with open(args.save_metrics, "w", encoding="utf-8") as fh:
                    json.dump(snap, fh)
                print(f"metrics snapshot written to {args.save_metrics}")
            if args.slo is not None:
                statuses = obs.SloTracker(slo_specs).evaluate(snap)
                slo_failed = _print_slo(statuses)
            if args.prom is not None:
                _write_prometheus(args.prom, snap, event_counts)
    finally:
        if collect:
            if not was_enabled:
                obs.disable()
            if args.events is not None or own_events:
                obs.disable_events()
    if not report["bit_identical"] or not tcp["bit_identical"]:
        return _fail("serving results diverged from direct sls")
    if overload["overloaded"] <= 0 or not overload["p99_within_slo"]:
        return _fail("admission control did not shed within SLO under overload")
    return 1 if slo_failed else 0


def _node_cmd(args) -> int:
    """``repro node [NAME]``: run one NDP node server in the foreground."""
    from .cluster import run_node_process

    name = args.action or "node0"
    try:
        run_node_process(name, host=args.host, port=args.port)
    except KeyboardInterrupt:
        print(f"node {name} stopped")
    except ConfigurationError as exc:
        return _fail(str(exc))
    return 0


def _cluster_cmd(args, scale: ExperimentScale) -> int:
    """``repro cluster``: demo store served across N local node processes.

    Spawns the nodes, shards a demo table, replays a query stream through
    the coordinator and cross-checks every answer against the local
    oracle; exits non-zero on any divergence.
    """
    import asyncio

    from .cluster import ClusterCoordinator, ClusterHealth, LocalCluster
    from .serve.bench import SIZES, _build_store
    from .workloads.traces import random_trace

    if args.nodes < 1:
        return _fail(f"--nodes must be >= 1, got {args.nodes}")
    sizes = SIZES.get(scale.name, SIZES["default"])
    own_events = obs.event_log() is None
    if args.events is not None:
        obs.enable_events(args.events)
    elif own_events:
        obs.enable_events()
    event_log = obs.event_log()
    ev_start = len(event_log)
    print(
        f"building demo store ({sizes['n_rows']} x {sizes['dim']}, "
        f"scale={scale.name}) and spawning {args.nodes} node processes ..."
    )
    store = _build_store(sizes["n_rows"], sizes["dim"], seed=11)
    trace = random_trace(sizes["n_rows"], sizes["n_queries"], 16, seed=13)
    rows = [list(ix) for ix in trace.indices]
    weights = [[int(w) for w in ws] for ws in trace.weights]
    golden = store.sls_many("emb", rows, weights)

    try:
        with LocalCluster(args.nodes) as nodes:
            for name, host, port in nodes:
                print(f"  {name} on {host}:{port}")

            async def run():
                coordinator = ClusterCoordinator(store, nodes)
                await coordinator.setup()
                try:
                    import numpy as np

                    started = time.time()
                    got = await coordinator.sls_many("emb", rows, weights)
                    elapsed = time.time() - started
                    mismatched = sum(
                        1
                        for q in range(len(rows))
                        if not np.array_equal(got[q], golden[q])
                    )
                    return mismatched, elapsed, coordinator.stats()
                finally:
                    await coordinator.close()

            mismatched, elapsed, stats = asyncio.run(run())
    except ConfigurationError as exc:
        return _fail(str(exc))
    finally:
        run_events = event_log.events()[ev_start:]
        if args.events is not None or own_events:
            obs.disable_events()

    qps = len(rows) / elapsed if elapsed > 0 else 0.0
    print(
        f"served {len(rows)} queries across {args.nodes} nodes in "
        f"{elapsed * 1e3:.1f} ms ({qps:.0f} qps), "
        f"mismatched {mismatched}, live {stats['live']}"
    )
    print(ClusterHealth.from_events(run_events).render())
    if args.events is not None:
        print(f"security-event journal appended to {args.events}")
    if mismatched:
        return _fail(f"cluster served {mismatched} divergent queries")
    return 0


def _bench_cluster_cmd(args, scale: ExperimentScale) -> int:
    """``repro bench-cluster``: the cluster robustness gate (CI smoke job).

    Three legs, each held to blame precision/recall 1.0 and bit-identical
    answers: (1) scripted in-process kill + tamper, (2) the seeded
    ``chaos-cluster`` preset, (3) real node processes with a mid-run
    SIGKILL and a byzantine dispatch.  Exit 1 if any leg fails its gate.
    """
    from .cluster import run_cluster_chaos, run_process_cluster_smoke, smoke_script

    if args.nodes < 3:
        return _fail(f"bench-cluster needs --nodes >= 3, got {args.nodes}")
    legs = {}
    started = time.time()
    print(f"== bench-cluster (scale={scale.name}, nodes={args.nodes}) ==")
    try:
        print("-- leg 1: scripted kill + byzantine tamper (in-process) --")
        legs["scripted"] = run_cluster_chaos(
            n_nodes=args.nodes, script=smoke_script(args.nodes)
        )
        print(legs["scripted"].render())
        print("-- leg 2: seeded chaos-cluster preset --")
        legs["seeded"] = run_cluster_chaos(n_nodes=args.nodes)
        print(legs["seeded"].render())
        print("-- leg 3: real node processes, SIGKILL + byzantine --")
        legs["process"] = run_process_cluster_smoke(n_nodes=args.nodes)
        print(legs["process"].render())
    except ConfigurationError as exc:
        return _fail(str(exc))
    print(f"[bench-cluster finished in {time.time() - started:.1f}s]")
    if args.json:
        bundle = {
            leg: {
                "plan": r.plan,
                "queries": r.queries,
                "mismatched": r.mismatched,
                "faulted": r.faulted_nodes,
                "blamed": r.blamed_nodes,
                "quarantined": r.quarantined_nodes,
                "reshards": r.reshards,
                "blame_precision": r.blame_precision,
                "blame_recall": r.blame_recall,
                "passed": r.passed,
            }
            for leg, r in legs.items()
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True)
        print(f"results written to {args.json}")
    for leg, result in legs.items():
        if not result.passed:
            return _fail(
                f"bench-cluster leg {leg!r} failed: "
                f"precision {result.blame_precision:.3f}, "
                f"recall {result.blame_recall:.3f}, "
                f"mismatched {result.mismatched}"
            )
    # The scripted legs must also show the full ladder on the journal.
    for leg in ("scripted", "process"):
        result = legs[leg]
        if not result.quarantined_nodes or result.reshards < 1:
            return _fail(
                f"bench-cluster leg {leg!r} never quarantined/re-sharded "
                f"(quarantined={result.quarantined_nodes}, "
                f"reshards={result.reshards})"
            )
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        print("  chaos    evaluation workload under fault injection + recovery")
        print("  obs      telemetry commands (obs report)")
        print("  serve    TCP serving front-end with batching + admission control")
        print("  bench-serve  serving throughput: sequential vs coalesced QPS")
        print("  node     run one NDP node server in the foreground")
        print("  cluster  demo store sharded across N local node processes")
        print("  bench-cluster  cluster robustness gate: blame/quarantine/re-shard")
        return 0

    if args.experiment not in EXPERIMENTS and args.experiment not in (
        "all",
        "chaos",
        "obs",
        "serve",
        "bench-serve",
        "node",
        "cluster",
        "bench-cluster",
    ):
        return _fail(
            f"unknown experiment {args.experiment!r} "
            f"(choose from: {', '.join(sorted(EXPERIMENTS))}, all, chaos, obs, "
            f"serve, bench-serve, node, cluster, bench-cluster, list)"
        )
    if args.scale not in _SCALES:
        return _fail(
            f"invalid scale {args.scale!r} "
            f"(choose from: {', '.join(sorted(_SCALES))})"
        )
    if args.hot_fraction is not None and not 0.0 < args.hot_fraction <= 1.0:
        return _fail(f"--hot-fraction must be in (0, 1], got {args.hot_fraction}")

    # Resolve the kernel tier before any experiment runs: a typo in
    # --kernel-tier or SECNDP_KERNEL_TIER (or an unsatisfiable 'native'
    # request) must fail fast, never silently serve from another tier.
    try:
        kernels.set_tier(args.kernel_tier)
    except ConfigurationError as exc:
        return _fail(str(exc))

    slo_specs = []
    if args.slo:
        try:
            slo_specs = obs.parse_slo_specs(args.slo)
        except ValueError as exc:
            return _fail(str(exc))

    if args.experiment == "obs":
        action = args.action or "report"
        if action != "report":
            return _fail(f"unknown obs action {action!r} (choose from: report)")
        return _obs_report(args, _SCALES[args.scale], slo_specs)
    if args.experiment == "node":
        return _node_cmd(args)
    if args.action is not None:
        return _fail(f"unexpected argument {args.action!r}")
    if args.metrics is not None:
        return _fail("--metrics only applies to 'obs report'")
    if args.experiment == "serve":
        return _serve_cmd(args, _SCALES[args.scale])
    if args.experiment == "bench-serve":
        return _bench_serve_cmd(args, _SCALES[args.scale], slo_specs)
    if args.experiment == "cluster":
        return _cluster_cmd(args, _SCALES[args.scale])
    if args.experiment == "bench-cluster":
        return _bench_cluster_cmd(args, _SCALES[args.scale])

    collect = (
        args.stats
        or args.trace is not None
        or args.slo is not None
        or args.prom is not None
    )
    was_enabled = obs.enabled()
    was_tracing = obs.tracing_enabled()
    if collect:
        obs.enable()
        # The tier resolved before metrics were enabled; re-publish so
        # kernel.tier / kernel.jit_warmup_ns appear in the snapshot.
        kernels.publish()
    if args.trace is not None:
        obs.enable_tracing()
    if args.events is not None:
        obs.enable_events(args.events)

    workers = args.workers if args.workers is not None else default_workers()
    if workers < 0:
        return _fail(f"--workers must be >= 0, got {workers}")

    if args.experiment == "chaos":
        scale = _SCALES[args.scale]
        # Sharded chaos serving is opt-in: the run is a functional-stack
        # replay, so default to in-process unless --workers was given.
        chaos_workers = args.workers if args.workers is not None else 0
        if args.sweep is not None:
            try:
                rates = parse_sweep_spec(args.sweep)
            except ValueError as exc:
                return _fail(str(exc))
            print(
                f"== chaos sweep: fault-rate grid "
                f"{', '.join(f'{r:g}' for r in rates)} (scale={scale.name}) =="
            )
            started = time.time()
            slo_failed = False
            try:
                with obs.span("experiment.chaos_sweep", cat="harness"):
                    sweep = run_chaos_sweep(
                        scale,
                        rates,
                        workers=chaos_workers,
                        prewarm=args.prewarm,
                        hot_fraction=args.hot_fraction,
                    )
                print(sweep.render())
                print(f"[chaos sweep finished in {time.time() - started:.1f}s]\n")
                if args.stats:
                    print("== metrics ==")
                    print(obs.format_snapshot(obs.snapshot()))
                if args.slo is not None or args.prom is not None:
                    snap = obs.snapshot(include_samples=True)
                    if args.slo is not None:
                        statuses = obs.SloTracker(slo_specs).evaluate(snap)
                        slo_failed = _print_slo(statuses)
                    if args.prom is not None:
                        log = obs.event_log()
                        counts = log.counts_by_kind() if log is not None else None
                        _write_prometheus(args.prom, snap, counts)
                if args.trace is not None:
                    path = obs.write_trace(args.trace)
                    print(f"trace written to {path}")
            finally:
                if collect and not was_enabled:
                    obs.disable()
                if args.trace is not None and not was_tracing:
                    obs.disable_tracing()
                if args.events is not None:
                    obs.disable_events()
            if not sweep.passed:
                worst = min(sweep.results, key=lambda r: r.detection_rate)
                return _fail(
                    f"chaos sweep failed: worst detection rate "
                    f"{worst.detection_rate:.3f} ({worst.plan})"
                )
            return 1 if slo_failed else 0
        try:
            plan = (
                FaultPlan.parse(args.plan)
                if args.plan
                else default_chaos_plan(args.fault_rate)
            )
        except ConfigurationError as exc:
            return _fail(str(exc))
        print(
            f"== chaos: fault injection + recovery replay "
            f"(scale={scale.name}, plan={plan.name}) =="
        )
        started = time.time()
        slo_failed = False
        try:
            with obs.span("experiment.chaos", cat="harness"):
                result = run_chaos(
                    scale,
                    plan=plan,
                    workers=chaos_workers,
                    prewarm=args.prewarm,
                    hot_fraction=args.hot_fraction,
                )
            print(result.render())
            print(f"[chaos finished in {time.time() - started:.1f}s]\n")
            if args.stats:
                print("== metrics ==")
                print(obs.format_snapshot(obs.snapshot()))
            if args.slo is not None or args.prom is not None:
                snap = obs.snapshot(include_samples=True)
                if args.slo is not None:
                    statuses = obs.SloTracker(slo_specs).evaluate(snap)
                    slo_failed = _print_slo(statuses)
                if args.prom is not None:
                    _write_prometheus(args.prom, snap, result.events)
            if args.trace is not None:
                path = obs.write_trace(args.trace)
                print(f"trace written to {path}")
        finally:
            if collect and not was_enabled:
                obs.disable()
            if args.trace is not None and not was_tracing:
                obs.disable_tracing()
            if args.events is not None:
                obs.disable_events()
        if result.detection_rate < 1.0 or result.mismatched:
            return _fail(
                f"chaos run failed: detection rate "
                f"{result.detection_rate:.3f}, {result.mismatched} mismatches"
            )
        return 1 if slo_failed else 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    scale = _SCALES[args.scale]
    collected = {}
    slo_failed = False
    try:
        for name in names:
            description, runner = EXPERIMENTS[name]
            print(f"== {name}: {description} (scale={scale.name}) ==")
            started = time.time()
            with obs.span(f"experiment.{name}", cat="harness"):
                result = runner(scale, workers)
            collected[name] = result
            print(result.render())
            print(f"[{name} finished in {time.time() - started:.1f}s]\n")
        cache_views = None
        if collect:
            # The experiment drivers are timing models; one functional
            # pass populates the crypto/protocol-layer counters too.
            cache_views = run_functional_shadow(
                scale,
                workers=workers,
                prewarm=args.prewarm,
                hot_fraction=args.hot_fraction,
            )
        if args.json:
            path = export_results(collected, args.json)
            print(f"results written to {path}")
        if args.stats:
            print("== metrics ==")
            print(obs.format_snapshot(obs.snapshot()))
            if cache_views is not None:
                # Fleet-wide (store + pool workers) pad-cache summary;
                # the same numbers appear as otp.cache.fleet.* gauges.
                print("== pad caches (fleet) ==")
                for label, info in (
                    ("otp", cache_views["otp"]),
                    ("tag", cache_views["tag"]),
                ):
                    served = info.hits + info.misses
                    rate = info.hits / served if served else 0.0
                    print(
                        f"  {label:4s} hits={info.hits} misses={info.misses} "
                        f"hit_rate={rate:.3f} evictions={info.evictions} "
                        f"size={info.currsize}/{info.maxsize}"
                    )
        if args.slo is not None or args.prom is not None:
            snap = obs.snapshot(include_samples=True)
            log = obs.event_log()
            event_counts = log.counts_by_kind() if log is not None else None
            if args.slo is not None:
                statuses = obs.SloTracker(slo_specs).evaluate(snap)
                slo_failed = _print_slo(statuses)
            if args.prom is not None:
                _write_prometheus(args.prom, snap, event_counts)
        if args.trace is not None:
            path = obs.write_trace(args.trace)
            print(f"trace written to {path}")
    finally:
        if collect and not was_enabled:
            obs.disable()
        if args.trace is not None and not was_tracing:
            obs.disable_tracing()
        if args.events is not None:
            obs.disable_events()
    return 1 if slo_failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
