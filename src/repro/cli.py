"""Command-line interface: regenerate any table/figure from a shell.

Usage::

    python -m repro list
    python -m repro table3 [--scale smoke|default|paper]
    python -m repro fig7 --scale default
    python -m repro all --scale smoke
    python -m repro table3 --scale smoke --stats --trace trace.json
    python -m repro fig7 --scale paper --workers 4
    python -m repro chaos --fault-rate 1e-3 --workers 2
    python -m repro chaos --plan ci-default
    python -m repro table3 --scale smoke --stats --prewarm --hot-fraction 0.05

Each experiment prints the same rows/series the paper reports (see
DESIGN.md Sec. 4 for the experiment index).  ``--stats`` prints the
observability registry snapshot after the run and ``--trace PATH``
writes a Chrome/Perfetto trace of the phase spans (DESIGN.md Sec. 9).
``--workers N`` fans the experiment grid across N processes
(DESIGN.md Sec. 10); the default comes from ``SECNDP_WORKERS`` or the
CPU count, and ``--workers 0`` forces the in-process path.
``--prewarm`` attaches hot-row tiering (DESIGN.md Sec. 12) to the
functional serving paths and pre-generates hot-set pads before queries;
``--hot-fraction F`` caps the hot set, and ``--stats`` then also prints
the fleet-wide pad-cache hit rates (store + pool workers).

Unknown experiment names and invalid scales exit with status 2 and a
one-line error, so shell scripts and CI steps fail fast without a
traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict

from . import obs
from .errors import ConfigurationError
from .faults import FaultPlan
from .harness.chaos import default_chaos_plan, run_chaos
from .harness.configs import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE, ExperimentScale
from .parallel import default_workers
from .harness.experiments import (
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_table3,
    run_table4,
    run_table5,
)
from .harness.experiments.common import run_functional_shadow
from .harness.export import export_results

__all__ = ["main", "EXPERIMENTS"]

_SCALES: Dict[str, ExperimentScale] = {
    "smoke": SMOKE_SCALE,
    "default": DEFAULT_SCALE,
    "paper": PAPER_SCALE,
}

#: name -> (description, runner taking a scale and a worker count)
EXPERIMENTS: Dict[str, tuple] = {
    "table3": (
        "end-to-end speedup vs baselines and SGX (Table III)",
        lambda scale, workers=None: run_table3(scale, workers=workers),
    ),
    "table4": (
        "LogLoss under quantization schemes (Table IV)",
        lambda scale, workers=None: run_table4(workers=workers),
    ),
    "table5": (
        "memory energy pJ/bit (Table V)",
        lambda scale, workers=None: run_table5(scale, workers=workers),
    ),
    "fig7": (
        "speedup vs #AES engines per NDP setting (Figure 7)",
        lambda scale, workers=None: run_figure7(scale, workers=workers),
    ),
    "fig8": (
        "% packets decryption-bound, Enc-only (Figure 8)",
        lambda scale, workers=None: run_figure8(scale, workers=workers),
    ),
    "fig9": (
        "verification-scheme speedups (Figure 9)",
        lambda scale, workers=None: run_figure9(scale, workers=workers),
    ),
    "fig10": (
        "% packets decryption-bound incl. verification (Figure 10)",
        lambda scale, workers=None: run_figure10(scale, workers=workers),
    ),
    "fig11": (
        "end-to-end breakdown + batch scaling (Figure 11)",
        lambda scale, workers=None: run_figure11(scale, workers=workers),
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SecNDP (HPCA 2022) reproduction - experiment runner",
    )
    # Experiment and scale are validated by hand in main() so that typos
    # produce a one-line error + exit code 2 instead of a traceback.
    parser.add_argument(
        "experiment",
        help="experiment to run ('list' to enumerate, 'all' for everything)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        help="experiment scale: smoke | default | paper (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON bundle to PATH",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the experiment grid "
            "(default: SECNDP_WORKERS if set, else the CPU count; "
            "0 = run everything in-process)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect metrics during the run and print the registry snapshot",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=1e-3,
        metavar="P",
        help="chaos only: per-element ciphertext/tag corruption rate "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="SPEC",
        help="chaos only: fault plan - a preset name (ci-default, "
        "memory-storm, paper-5e3) or 'kind=rate,...'; overrides --fault-rate",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace of the run's phase spans to PATH",
    )
    parser.add_argument(
        "--prewarm",
        action="store_true",
        help="attach hot-row tiering and pre-generate OTP/tag pads for the "
        "hot set before serving (chaos and functional-shadow paths)",
    )
    parser.add_argument(
        "--hot-fraction",
        type=float,
        default=None,
        metavar="F",
        help="cap the tiering hot set at F of each table's rows "
        "(default: coverage-driven)",
    )
    return parser


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        print("  chaos    evaluation workload under fault injection + recovery")
        return 0

    if args.experiment not in EXPERIMENTS and args.experiment not in ("all", "chaos"):
        return _fail(
            f"unknown experiment {args.experiment!r} "
            f"(choose from: {', '.join(sorted(EXPERIMENTS))}, all, chaos, list)"
        )
    if args.scale not in _SCALES:
        return _fail(
            f"invalid scale {args.scale!r} "
            f"(choose from: {', '.join(sorted(_SCALES))})"
        )

    collect = args.stats or args.trace is not None
    was_enabled = obs.enabled()
    was_tracing = obs.tracing_enabled()
    if collect:
        obs.enable()
    if args.trace is not None:
        obs.enable_tracing()

    workers = args.workers if args.workers is not None else default_workers()
    if workers < 0:
        return _fail(f"--workers must be >= 0, got {workers}")
    if args.hot_fraction is not None and not 0.0 < args.hot_fraction <= 1.0:
        return _fail(f"--hot-fraction must be in (0, 1], got {args.hot_fraction}")

    if args.experiment == "chaos":
        try:
            plan = (
                FaultPlan.parse(args.plan)
                if args.plan
                else default_chaos_plan(args.fault_rate)
            )
        except ConfigurationError as exc:
            return _fail(str(exc))
        scale = _SCALES[args.scale]
        # Sharded chaos serving is opt-in: the run is a functional-stack
        # replay, so default to in-process unless --workers was given.
        chaos_workers = args.workers if args.workers is not None else 0
        print(
            f"== chaos: fault injection + recovery replay "
            f"(scale={scale.name}, plan={plan.name}) =="
        )
        started = time.time()
        try:
            with obs.span("experiment.chaos", cat="harness"):
                result = run_chaos(
                    scale,
                    plan=plan,
                    workers=chaos_workers,
                    prewarm=args.prewarm,
                    hot_fraction=args.hot_fraction,
                )
            print(result.render())
            print(f"[chaos finished in {time.time() - started:.1f}s]\n")
            if args.stats:
                print("== metrics ==")
                print(obs.format_snapshot(obs.snapshot()))
            if args.trace is not None:
                path = obs.write_trace(args.trace)
                print(f"trace written to {path}")
        finally:
            if collect and not was_enabled:
                obs.disable()
            if args.trace is not None and not was_tracing:
                obs.disable_tracing()
        if result.detection_rate < 1.0 or result.mismatched:
            return _fail(
                f"chaos run failed: detection rate "
                f"{result.detection_rate:.3f}, {result.mismatched} mismatches"
            )
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    scale = _SCALES[args.scale]
    collected = {}
    try:
        for name in names:
            description, runner = EXPERIMENTS[name]
            print(f"== {name}: {description} (scale={scale.name}) ==")
            started = time.time()
            with obs.span(f"experiment.{name}", cat="harness"):
                result = runner(scale, workers)
            collected[name] = result
            print(result.render())
            print(f"[{name} finished in {time.time() - started:.1f}s]\n")
        cache_views = None
        if collect:
            # The experiment drivers are timing models; one functional
            # pass populates the crypto/protocol-layer counters too.
            cache_views = run_functional_shadow(
                scale,
                workers=workers,
                prewarm=args.prewarm,
                hot_fraction=args.hot_fraction,
            )
        if args.json:
            path = export_results(collected, args.json)
            print(f"results written to {path}")
        if args.stats:
            print("== metrics ==")
            print(obs.format_snapshot(obs.snapshot()))
            if cache_views is not None:
                # Fleet-wide (store + pool workers) pad-cache summary;
                # the same numbers appear as otp.cache.fleet.* gauges.
                print("== pad caches (fleet) ==")
                for label, info in (
                    ("otp", cache_views["otp"]),
                    ("tag", cache_views["tag"]),
                ):
                    served = info.hits + info.misses
                    rate = info.hits / served if served else 0.0
                    print(
                        f"  {label:4s} hits={info.hits} misses={info.misses} "
                        f"hit_rate={rate:.3f} evictions={info.evictions} "
                        f"size={info.currsize}/{info.maxsize}"
                    )
        if args.trace is not None:
            path = obs.write_trace(args.trace)
            print(f"trace written to {path}")
    finally:
        if collect and not was_enabled:
            obs.disable()
        if args.trace is not None and not was_tracing:
            obs.disable_tracing()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
