"""SecNDP: Secure Near-Data Processing with Untrusted Memory (HPCA 2022).

A from-scratch Python reproduction of the complete SecNDP system:

* :mod:`repro.core` - the paper's contribution: arithmetic encryption
  (Alg. 1), linear checksums and encrypted MACs (Alg. 2/3/8), the
  weighted-summation and verification protocols (Alg. 4/5), the
  security-game oracles (Alg. 6/7) and the SecNDP engine model (Sec. V).
* :mod:`repro.crypto` - AES-128, tweaked counter systems, ring and
  prime-field arithmetic (all implemented from scratch).
* :mod:`repro.memsim` - event-driven cycle-level DDR4 model (Table II).
* :mod:`repro.ndp` - NDP commands, PUs, packets, AES-engine throughput,
  tag-placement schemes and the NDP simulator.
* :mod:`repro.workloads` - DLRM recommendation inference and medical
  analytics, with traces and quantization schemes.
* :mod:`repro.baselines` - non-NDP, TEE, SGX and unprotected NDP.
* :mod:`repro.analysis` - energy (Table V), area, accuracy (Table IV).
* :mod:`repro.harness` - per-table / per-figure experiment drivers.
* :mod:`repro.obs` - metrics registry + phase tracing across all layers.
* :mod:`repro.kernels` - optional compiled tier (numba JIT / C) for the
  limb-field and AES hot paths behind ``SECNDP_KERNEL_TIER`` dispatch.

Quickstart::

    import numpy as np
    from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice

    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(key=b"0123456789abcdef", params=params)
    device = UntrustedNdpDevice(params)

    table = np.arange(64 * 32, dtype=np.uint32).reshape(64, 32) % 1000
    enc = processor.encrypt_matrix(table, base_addr=0x1000, region="table")
    device.store("table", enc)

    result = processor.weighted_row_sum(
        device, "table", rows=[3, 17, 42], weights=[1, 2, 3]
    )
"""

from . import analysis, baselines, core, crypto, faults, harness, memsim, ndp, obs, workloads
from .errors import (
    ConfigurationError,
    RecoveryExhaustedError,
    SecNDPError,
    VerificationError,
    VersionBudgetError,
    VersionReuseError,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "crypto",
    "faults",
    "harness",
    "memsim",
    "ndp",
    "obs",
    "workloads",
    "ConfigurationError",
    "RecoveryExhaustedError",
    "SecNDPError",
    "VerificationError",
    "VersionBudgetError",
    "VersionReuseError",
    "__version__",
]
