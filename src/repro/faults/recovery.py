"""Verification-triggered recovery (what a deployed enclave does next).

The paper stops at the verification-failure interrupt (Sec. V-E3); this
module models the handler.  A :class:`RecoveryPolicy` configures a
four-rung ladder, climbed per failing query:

1. **Retry** the offloaded computation (bounded attempts, exponential
   backoff with deterministic jitter) - recovers transient NDP/bus
   faults, which re-roll on every attempt.
2. **Trusted non-NDP recompute**: read every queried row over the bus,
   verify it *individually* (a PF=1 weighted summation has a full tag
   identity), and pool on the trusted side - recovers persistent faults
   in the NDP compute path while still refusing corrupted data.  This is
   exactly the paper's non-NDP baseline path
   (:mod:`repro.baselines.non_ndp`) used as the degraded mode.
3. **Repair + quarantine**: rows whose individual verification fails are
   truly corrupted in memory; when the enclave retains the plaintext
   (recovery-enabled stores do), their residues are substituted from it
   and the rows are quarantined - later queries touching them skip
   straight to the trusted path.
4. **Re-encryption** with bumped versions once a table accumulates
   ``reencrypt_after`` repairs: the region is re-keyed fresh into
   untrusted memory (Sec. V-A version bump), clearing the quarantine.

Every rung is observable (``recovery.*`` counters / spans), every
outcome is recorded in a bounded :class:`RecoveryLog` so chaos harnesses
can prove detection and recovery rates instead of asserting them, and
every quarantine/repair/re-encryption emits a typed audit event
(:mod:`repro.obs.events`).  With a JSONL event sink configured those
events double as a *persistent quarantine journal*:
:meth:`RecoveryLog.replay_events` rebuilds quarantine and repair state
from a recorded stream, so a restarted store keeps refusing known-bad
rows (see ``SecureEmbeddingStore.load_quarantine_journal``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from .. import obs
from ..errors import RecoveryExhaustedError

__all__ = ["RecoveryPolicy", "RecoveryOutcome", "RecoveryLog", "RecoveryExhaustedError"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the recovery ladder.

    Parameters
    ----------
    max_retries:
        Full re-offload attempts after the first detected failure.
    backoff_base_s / backoff_factor / jitter:
        Attempt ``k`` sleeps ``backoff_base_s * backoff_factor**k``
        scaled by a deterministic jitter in ``[1-jitter, 1+jitter]``
        (decorrelates retry storms across queries without giving up
        replayability).
    quarantine:
        Quarantine rows that needed plaintext repair; queries touching
        them skip the NDP path until re-encryption.
    reencrypt_after:
        Re-encrypt a table under bumped versions once this many of its
        rows have been repaired (0/None disables).
    retain_plaintext:
        Keep the quantized residues trusted-side at load time; required
        for rung 3/4.  Costs one plaintext copy of each table.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0
    jitter: float = 0.5
    quarantine: bool = True
    reencrypt_after: Optional[int] = 4
    retain_plaintext: bool = True
    sleep: Callable[[float], None] = time.sleep

    def backoff_s(self, attempt: int, salt: int = 0) -> float:
        """Deterministic backoff-with-jitter for retry ``attempt`` (0-based)."""
        base = self.backoff_base_s * (self.backoff_factor ** attempt)
        if self.jitter <= 0:
            return base
        # Cheap deterministic hash -> [1-jitter, 1+jitter]; no RNG state.
        h = (attempt * 0x9E3779B1 + salt * 0x85EBCA77) & 0xFFFFFFFF
        return base * (1.0 - self.jitter + 2.0 * self.jitter * (h / 0xFFFFFFFF))


@dataclass(frozen=True)
class RecoveryOutcome:
    """How one query was served under recovery."""

    table: str
    rows: tuple
    #: "ok" (verified first try), "retry", "fallback", "repair", or
    #: "quarantined" (served trusted-side without attempting the offload)
    resolved_via: str
    detected: bool          #: at least one VerificationError was raised
    attempts: int           #: offload attempts (1 = clean first try)
    repaired_rows: tuple = ()

    @property
    def recovered(self) -> bool:
        return self.detected  # every non-raising outcome is a recovery


class RecoveryLog:
    """Bounded per-store log of outcomes plus quarantine/repair state."""

    MAX_OUTCOMES = 100_000

    def __init__(self) -> None:
        self.outcomes: List[RecoveryOutcome] = []
        self.quarantined: Dict[str, Set[int]] = {}
        self.repairs: Dict[str, int] = {}
        self.reencryptions: Dict[str, int] = {}

    def record(self, outcome: RecoveryOutcome) -> None:
        if len(self.outcomes) < self.MAX_OUTCOMES:
            self.outcomes.append(outcome)

    def quarantine_rows(self, table: str, rows: Sequence[int]) -> None:
        row_ids = [int(r) for r in rows]
        self.quarantined.setdefault(table, set()).update(row_ids)
        obs.emit_event(obs.QUARANTINE, table=table, rows=row_ids)

    def quarantined_rows(self, table: str) -> Set[int]:
        return self.quarantined.get(table, set())

    def clear_quarantine(self, table: str) -> None:
        self.quarantined.pop(table, None)
        self.repairs.pop(table, None)

    def note_repairs(self, table: str, n: int) -> int:
        self.repairs[table] = self.repairs.get(table, 0) + n
        return self.repairs[table]

    def note_reencryption(self, table: str) -> None:
        self.reencryptions[table] = self.reencryptions.get(table, 0) + 1

    # -- persistent journal (repro.obs.events) ---------------------------------

    def replay_events(self, events: Iterable["obs.SecurityEvent"]) -> int:
        """Rebuild quarantine/repair/re-encryption state from audit events.

        Mutates the dicts *directly* — replay must never re-emit, or a
        journal reload would append every event to the journal again.
        A ``reencrypt`` event clears the table's quarantine exactly like
        the live ladder does (the region was re-keyed; the old damage is
        gone).  Returns the number of state-bearing events applied.
        """
        applied = 0
        for event in events:
            if event.table is None:
                continue
            if event.kind == obs.QUARANTINE:
                self.quarantined.setdefault(event.table, set()).update(event.rows)
                applied += 1
            elif event.kind == obs.RECOVERY_REPAIR:
                n = len(event.rows) or int(event.details.get("repaired", 0))
                self.repairs[event.table] = self.repairs.get(event.table, 0) + n
                applied += 1
            elif event.kind == obs.REENCRYPT:
                self.reencryptions[event.table] = (
                    self.reencryptions.get(event.table, 0) + 1
                )
                self.quarantined.pop(event.table, None)
                self.repairs.pop(event.table, None)
                applied += 1
        return applied

    # -- chaos-harness accounting ---------------------------------------------

    def detected_count(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    def recovered_count(self) -> int:
        return sum(1 for o in self.outcomes if o.detected and o.recovered)

    def counts_by_resolution(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.outcomes:
            counts[o.resolved_via] = counts.get(o.resolved_via, 0) + 1
        return counts

    def detection_rate(self, exposed: Callable[[RecoveryOutcome], bool]) -> float:
        """Fraction of exposed queries whose fault was detected.

        ``exposed`` decides whether a query touched injected damage; the
        rate over that subset is what Thms. 1-2 bound at 1.0 for
        tag-covered faults.
        """
        hits = [o for o in self.outcomes if exposed(o)]
        if not hits:
            return 1.0
        return sum(1 for o in hits if o.detected) / len(hits)
