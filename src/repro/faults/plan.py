"""Composable, seeded fault plans (the chaos half of Sec. V-E3).

SecNDP's verification scheme (Alg. 2/3, Thms. 1-2) exists to *detect*
misbehaviour of untrusted memory and NDP units; this module supplies the
misbehaviour.  A :class:`FaultPlan` names a set of fault kinds and
per-opportunity rates; a :class:`FaultInjector` draws deterministic,
seeded decisions from the plan and applies them at the hook sites spread
through the protocol, NDP and serving layers (see
:mod:`repro.faults.hooks` for the activation model - injection is off by
default and costs one ``is None`` check on the hot paths).

Fault taxonomy (mapped to the paper's threat model, Sec. II):

========================  =====================================================
kind                      models
========================  =====================================================
``ciphertext_bit``        persistent bit flips in stored ciphertext (rowhammer,
                          stuck cells, malicious writes)
``tag_replay``            a stored tag replaced by a stale value (replay)
``tag_tamper``            a forged tag summation returned by the NDP PU
``result_skew``           a skewed data partial sum returned by the NDP PU
``version_flip``          the trusted side regenerating pads under a wrong OTP
                          counter version (version-management bug)
``packet_drop``           an NDP command packet dropped on the command channel
``packet_dup``            an NDP command packet executed twice
``packet_delay``          command/readout packets delayed (timing only)
``worker_crash``          a serving worker process dying mid-task
``worker_raise``          a serving worker task failing with an exception
``worker_hang``           a serving worker task hanging past its deadline
``node_byzantine``        a cluster NDP node returning a forged tag share
``node_slow``             a cluster node answering past its deadline
``node_dead``             a cluster node process dying mid-run
``node_partition``        a cluster node unreachable (network partition)
========================  =====================================================

All of the memory/compute kinds are *tag-covered*: any of them that
perturbs a served result breaks the Alg. 5 tag identity, so verification
must detect them with probability 1 (up to the m/q forgery bound, which
is negligible at the real field size).  The timing and worker kinds are
not data faults; they exercise the serving engine's liveness machinery
instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..errors import ConfigurationError

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "PRESET_PLANS",
    "MEMORY_FAULTS",
    "TRANSIENT_FAULTS",
    "WORKER_FAULTS",
    "NODE_FAULTS",
]


class FaultKind(str, Enum):
    """One injectable misbehaviour; see the module table for semantics."""

    CIPHERTEXT_BIT = "ciphertext_bit"
    TAG_REPLAY = "tag_replay"
    TAG_TAMPER = "tag_tamper"
    RESULT_SKEW = "result_skew"
    VERSION_FLIP = "version_flip"
    PACKET_DROP = "packet_drop"
    PACKET_DUP = "packet_dup"
    PACKET_DELAY = "packet_delay"
    WORKER_CRASH = "worker_crash"
    WORKER_RAISE = "worker_raise"
    WORKER_HANG = "worker_hang"
    NODE_BYZANTINE = "node_byzantine"
    NODE_SLOW = "node_slow"
    NODE_DEAD = "node_dead"
    NODE_PARTITION = "node_partition"


#: Persistent corruptions of untrusted memory, applied to a device's
#: stored ciphertext/tags (recovered only by repair + re-encryption).
MEMORY_FAULTS = (FaultKind.CIPHERTEXT_BIT, FaultKind.TAG_REPLAY)

#: Per-call transient faults on the protocol path (a retry re-rolls them).
TRANSIENT_FAULTS = (
    FaultKind.TAG_TAMPER,
    FaultKind.RESULT_SKEW,
    FaultKind.VERSION_FLIP,
)

#: Liveness faults against the parallel serving engine's workers.
WORKER_FAULTS = (
    FaultKind.WORKER_CRASH,
    FaultKind.WORKER_RAISE,
    FaultKind.WORKER_HANG,
)

#: Faults against cluster NDP node processes (DESIGN.md Sec. 16).  Only
#: ``node_byzantine`` is a data fault (tag-covered: the coordinator's
#: per-shard check must catch it with probability 1 up to m/q); the rest
#: exercise the blame/quarantine/re-shard liveness ladder.
NODE_FAULTS = (
    FaultKind.NODE_BYZANTINE,
    FaultKind.NODE_SLOW,
    FaultKind.NODE_DEAD,
    FaultKind.NODE_PARTITION,
)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded description of what to break and how often.

    ``rates`` maps fault kinds to per-opportunity probabilities: for
    memory faults the opportunity is one stored element (or one stored
    tag), for transient faults one protocol call, for packet faults one
    packet, for worker faults one dispatched shard task.  Everything a
    plan does is derived from ``seed``, so a chaos run is replayable.
    """

    rates: Mapping[Union[FaultKind, str], float] = field(default_factory=dict)
    seed: int = 0
    name: str = "custom"
    #: Hard cap on injected faults across the injector's lifetime; keeps
    #: CI chaos runs bounded.  ``None`` = unbounded.
    max_faults: Optional[int] = None
    #: Seconds of injected delay for ``packet_delay`` (per packet, as
    #: microseconds in the timing models) and ``worker_hang`` (per task).
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        normalized: Dict[FaultKind, float] = {}
        for kind, rate in dict(self.rates).items():
            kind = FaultKind(kind)
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate for {kind.value!r} must be in [0, 1], got {rate}"
                )
            if rate > 0.0:
                normalized[kind] = rate
        object.__setattr__(self, "rates", normalized)
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigurationError("max_faults must be non-negative")

    def rate(self, kind: FaultKind) -> float:
        return self.rates.get(kind, 0.0)

    @property
    def empty(self) -> bool:
        return not self.rates

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a preset name or a ``kind=rate,...`` spec.

        ``"ci-default"`` -> the committed CI preset;
        ``"ciphertext_bit=1e-3,tag_tamper=0.01"`` -> a custom plan.
        An optional ``seed=N`` entry overrides ``seed``.
        """
        spec = spec.strip()
        if spec in PRESET_PLANS:
            return PRESET_PLANS[spec]
        rates: Dict[str, float] = {}
        plan_seed = seed
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigurationError(
                    f"bad fault-plan entry {part!r} (want kind=rate; presets: "
                    f"{', '.join(sorted(PRESET_PLANS))})"
                )
            key, value = (s.strip() for s in part.split("=", 1))
            if key == "seed":
                plan_seed = int(value)
                continue
            try:
                FaultKind(key)
            except ValueError:
                raise ConfigurationError(
                    f"unknown fault kind {key!r} (choose from: "
                    f"{', '.join(k.value for k in FaultKind)})"
                ) from None
            rates[key] = float(value)
        return cls(rates=rates, seed=plan_seed, name=spec or "empty")


#: Named plans.  ``ci-default`` is what the chaos CI job runs the tier-1
#: suite under: every recovery-enabled serving path sees low-rate
#: transient and worker faults and must still produce bit-exact results.
PRESET_PLANS: Dict[str, FaultPlan] = {
    "ci-default": FaultPlan(
        name="ci-default",
        seed=2022,
        rates={
            FaultKind.RESULT_SKEW: 0.02,
            FaultKind.TAG_TAMPER: 0.01,
            FaultKind.VERSION_FLIP: 0.005,
            FaultKind.WORKER_RAISE: 0.01,
        },
        max_faults=200,
        delay_s=0.01,
    ),
    "memory-storm": FaultPlan(
        name="memory-storm",
        seed=7,
        rates={
            FaultKind.CIPHERTEXT_BIT: 1e-3,
            FaultKind.TAG_REPLAY: 1e-3,
        },
    ),
    "paper-5e3": FaultPlan(
        # The Sec. V-E3 scenario: occasional wrong NDP results that the
        # verification-failure interrupt must catch.
        name="paper-5e3",
        seed=53,
        rates={
            FaultKind.RESULT_SKEW: 0.05,
            FaultKind.TAG_TAMPER: 0.02,
        },
    ),
    "chaos-cluster": FaultPlan(
        # The ISSUE-10 acceptance scenario: per-node tag tampering and
        # node kills at 1e-3; blame precision/recall must be 1.0 and
        # every answer bit-identical to the single-host oracle.
        name="chaos-cluster",
        seed=1022,
        rates={
            FaultKind.NODE_BYZANTINE: 1e-3,
            FaultKind.NODE_DEAD: 1e-3,
            FaultKind.NODE_SLOW: 5e-4,
        },
        delay_s=0.02,
    ),
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-hoc exposure accounting."""

    kind: FaultKind
    site: str
    context: str
    detail: str = ""


class FaultInjector:
    """Draws seeded decisions from a plan and logs what it broke.

    Thread-safe (the serving engine's parent side and the store share
    one process); per-process - worker processes never install one, the
    parent ships them concrete directives instead, so all randomness
    lives in a single seeded stream.

    The injector only fires while *armed* (see :mod:`repro.faults.hooks`):
    recovery-enabled serving paths arm it around their protocol calls, so
    direct protocol use - tests, examples, honest benchmarks - never sees
    an injected fault even when a plan is installed process-wide.
    """

    #: Bounded event log; chaos runs at CI scale stay well under this.
    MAX_EVENTS = 100_000

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._lock = threading.Lock()
        self._armed = 0
        self._context = ""
        self.events: List[FaultEvent] = []
        self.injected = 0

    # -- arming ----------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed > 0

    def arm(self) -> None:
        with self._lock:
            self._armed += 1

    def disarm(self) -> None:
        with self._lock:
            self._armed = max(0, self._armed - 1)

    def set_context(self, context: str) -> None:
        """Label subsequent events (e.g. ``"query:3"``) for attribution."""
        self._context = context

    # -- decisions -------------------------------------------------------------

    def _record(self, kind: FaultKind, site: str, detail: str = "") -> None:
        self.injected += 1
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(
                FaultEvent(kind=kind, site=site, context=self._context, detail=detail)
            )
        obs.inc(f"faults.injected.{kind.value}")

    def _budget_left(self) -> bool:
        return self.plan.max_faults is None or self.injected < self.plan.max_faults

    def decide(self, kind: FaultKind, site: str, detail: str = "") -> bool:
        """One seeded Bernoulli draw; records the event when it fires."""
        rate = self.plan.rate(kind)
        if rate <= 0.0:
            return False
        with self._lock:
            if not self._budget_left():
                return False
            if self._rng.random() >= rate:
                return False
            self._record(kind, site, detail)
            return True

    def _randint(self, low: int, high: int) -> int:
        with self._lock:
            return int(self._rng.integers(low, high))

    # -- transient protocol faults ---------------------------------------------

    def perturb_result(self, ring, values: np.ndarray, site: str) -> np.ndarray:
        """Maybe skew one lane of an NDP data partial sum."""
        if not self.decide(FaultKind.RESULT_SKEW, site):
            return values
        values = values.copy()
        lane = self._randint(0, max(values.shape[-1], 1))
        delta = ring.dtype(self._randint(1, 1 << 16))
        flat = values.reshape(-1, values.shape[-1])
        flat[0, lane] = ring.add(flat[0, lane], delta)
        return values

    def perturb_scalar_result(self, ring, value: int, site: str) -> int:
        if not self.decide(FaultKind.RESULT_SKEW, site):
            return value
        return int(ring.add(ring.dtype(value), ring.dtype(self._randint(1, 1 << 16))))

    def perturb_tag(self, fieldobj, tag: int, site: str) -> int:
        """Maybe forge a returned tag summation."""
        if not self.decide(FaultKind.TAG_TAMPER, site):
            return tag
        return fieldobj.add(tag, self._randint(1, 1 << 30))

    def perturb_version(self, version: int, site: str) -> int:
        """Maybe flip the OTP counter version the trusted side uses."""
        if not self.decide(FaultKind.VERSION_FLIP, site):
            return version
        return version ^ 1

    # -- persistent memory corruption ------------------------------------------

    def corrupt_device(self, device, names=None) -> Dict[str, set]:
        """Flip stored ciphertext bits / replay stored tags in place.

        Walks the device's stored matrices and, per element (per tag),
        draws against the ``ciphertext_bit`` (``tag_replay``) rate.
        Returns ``{table: {row, ...}}`` of corrupted rows so a chaos
        harness knows exactly which queries were exposed.  This is the
        "memory is untrusted" half of the threat model made concrete;
        it is invoked explicitly by chaos harnesses/tests, never from a
        hot path.
        """
        bit_rate = self.plan.rate(FaultKind.CIPHERTEXT_BIT)
        replay_rate = self.plan.rate(FaultKind.TAG_REPLAY)
        corrupted: Dict[str, set] = {}
        if bit_rate <= 0.0 and replay_rate <= 0.0:
            return corrupted
        names = list(names) if names is not None else list(device._store)
        for name in names:
            enc = device._store[name]
            rows: set = set()
            ct = enc.ciphertext
            if bit_rate > 0.0:
                with self._lock:
                    mask = self._rng.random(ct.shape) < bit_rate
                for i, j in zip(*np.nonzero(mask)):
                    if not self._budget_left():
                        break
                    bit = self._randint(0, enc.params.element_bits)
                    ct[i, j] ^= ct.dtype.type(1 << bit)
                    rows.add(int(i))
                    with self._lock:
                        self._record(
                            FaultKind.CIPHERTEXT_BIT,
                            "device.store",
                            f"{name}[{int(i)},{int(j)}] bit {bit}",
                        )
            if replay_rate > 0.0 and enc.tags is not None:
                with self._lock:
                    tag_mask = self._rng.random(len(enc.tags)) < replay_rate
                for (i,) in zip(*np.nonzero(tag_mask)):
                    if not self._budget_left():
                        break
                    stale = self._randint(1, 1 << 62)
                    enc.tags[int(i)] = (enc.tags[int(i)] + stale) % (
                        (1 << 127) - 1
                    )
                    rows.add(int(i))
                    with self._lock:
                        self._record(
                            FaultKind.TAG_REPLAY, "device.store", f"{name}[{int(i)}]"
                        )
            if rows:
                corrupted[name] = rows
        return corrupted

    # -- packet faults (timing models) -----------------------------------------

    def packet_faults(self, n_packets: int, site: str) -> Tuple[int, int, float]:
        """(drops, duplicates, extra_delay_s) over ``n_packets`` packets."""
        drops = dups = 0
        delay = 0.0
        p_drop = self.plan.rate(FaultKind.PACKET_DROP)
        p_dup = self.plan.rate(FaultKind.PACKET_DUP)
        p_delay = self.plan.rate(FaultKind.PACKET_DELAY)
        if p_drop <= 0.0 and p_dup <= 0.0 and p_delay <= 0.0:
            return 0, 0, 0.0
        for _ in range(int(n_packets)):
            if self.decide(FaultKind.PACKET_DROP, site):
                drops += 1
            if self.decide(FaultKind.PACKET_DUP, site):
                dups += 1
            if self.decide(FaultKind.PACKET_DELAY, site):
                delay += self.plan.delay_s
        return drops, dups, delay

    def command_fault(self, site: str) -> Optional[str]:
        """For the instruction-level executor: ``"drop"``/``"dup"``/None."""
        if self.decide(FaultKind.PACKET_DROP, site):
            return "drop"
        if self.decide(FaultKind.PACKET_DUP, site):
            return "dup"
        return None

    # -- worker faults (serving engine) ----------------------------------------

    def worker_directive(self, site: str) -> Optional[Tuple]:
        """One shard task's fate: crash/raise/hang directive, or None.

        Decided on the parent (trusted) side so determinism survives the
        process boundary; the worker just obeys the directive.
        """
        if self.decide(FaultKind.WORKER_CRASH, site):
            return ("crash",)
        if self.decide(FaultKind.WORKER_RAISE, site):
            return ("raise",)
        if self.decide(FaultKind.WORKER_HANG, site):
            return ("hang", self.plan.delay_s)
        return None

    # -- node faults (cluster tier) ---------------------------------------------

    def node_directive(self, site: str) -> Optional[Tuple]:
        """One cluster dispatch's fate, decided coordinator-side.

        Like :meth:`worker_directive`, the single seeded stream lives on
        the trusted coordinator and the node just obeys the directive
        shipped in the ``partial_sum`` payload:

        * ``("byzantine",)`` — node forges its tag shares (caught by the
          per-shard check, blamed, and failed over);
        * ``("slow", delay_s)`` — node sleeps past the deadline;
        * ``("dead",)`` — node process exits before answering;
        * ``("partition",)`` — node never answers this request.
        """
        if self.decide(FaultKind.NODE_BYZANTINE, site):
            return ("byzantine",)
        if self.decide(FaultKind.NODE_DEAD, site):
            return ("dead",)
        if self.decide(FaultKind.NODE_PARTITION, site):
            return ("partition",)
        if self.decide(FaultKind.NODE_SLOW, site):
            return ("slow", self.plan.delay_s)
        return None

    # -- reporting --------------------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind.value] = counts.get(ev.kind.value, 0) + 1
        return counts
