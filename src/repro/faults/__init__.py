"""Fault injection and verification-triggered recovery.

The paper's guarantee is *detection* (Alg. 2/3, Thms. 1-2, the
Sec. V-E3 verification-failure interrupt); this package supplies both
the faults to detect and the handler that turns a detection into a
served result:

* :mod:`repro.faults.plan` - :class:`FaultPlan` / :class:`FaultInjector`:
  composable, seeded descriptions of ciphertext bit flips, tag
  tamper/replay, skewed NDP partial sums, OTP version flips, command
  packet drop/dup/delay, and serving-worker crash/hang faults.
* :mod:`repro.faults.hooks` - process-wide activation; off by default,
  one branch on the hot paths, ambient activation via
  ``SECNDP_FAULT_PLAN``.
* :mod:`repro.faults.recovery` - :class:`RecoveryPolicy`: bounded
  retries with backoff+jitter, trusted non-NDP recompute with per-row
  verification, plaintext repair + quarantine, and re-encryption under
  bumped versions.

DESIGN.md Sec. 11 documents the fault model and the recovery state
machine; ``python -m repro chaos`` replays evaluation workloads under a
plan and reports detection/recovery rates.
"""

from .hooks import (
    ENV_FAULT_PLAN,
    ambient_injector,
    armed,
    armed_injector,
    clear,
    injected,
    install,
)
from .plan import (
    MEMORY_FAULTS,
    NODE_FAULTS,
    PRESET_PLANS,
    TRANSIENT_FAULTS,
    WORKER_FAULTS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from .recovery import RecoveryExhaustedError, RecoveryLog, RecoveryOutcome, RecoveryPolicy

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "PRESET_PLANS",
    "MEMORY_FAULTS",
    "TRANSIENT_FAULTS",
    "WORKER_FAULTS",
    "NODE_FAULTS",
    "ENV_FAULT_PLAN",
    "install",
    "clear",
    "injected",
    "armed",
    "armed_injector",
    "ambient_injector",
    "RecoveryPolicy",
    "RecoveryOutcome",
    "RecoveryLog",
    "RecoveryExhaustedError",
]
