"""Process-wide fault-injection activation (off by default, ~free).

Hook sites in the protocol, NDP and serving layers all follow the same
two-step guard::

    inj = fault_hooks.armed_injector()
    if inj is not None:
        ...  # slow path: maybe inject

:func:`armed_injector` is one module-attribute load plus (at most) one
attribute read - when no injector is installed it returns ``None``
immediately, so the disabled cost on the hot paths is a single branch
(benchmarked by ``benchmarks/check_overhead.py`` to stay under 2%).

Installation is explicit (:func:`install` / :func:`clear` /
:func:`injected`), or ambient via the ``SECNDP_FAULT_PLAN`` environment
variable: when set to a preset name (``ci-default``) or a
``kind=rate,...`` spec, :func:`ambient_injector` lazily builds one
injector for the whole process.  Recovery-enabled serving paths
(:class:`~repro.workloads.secure_sls.SecureEmbeddingStore` with a
:class:`~repro.faults.recovery.RecoveryPolicy`) pick the ambient
injector up automatically - which is how the chaos CI job drives the
tier-1 suite: only paths that can *recover* are ever faulted.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from .plan import FaultInjector, FaultPlan

__all__ = [
    "ENV_FAULT_PLAN",
    "install",
    "clear",
    "get",
    "armed_injector",
    "armed",
    "injected",
    "ambient_injector",
]

ENV_FAULT_PLAN = "SECNDP_FAULT_PLAN"

#: The installed injector, or None.  Hot sites read this attribute
#: directly through :func:`armed_injector`; keep it a plain module
#: global so the disabled path stays one load + one is-check.
_INJECTOR: Optional[FaultInjector] = None

#: Lazily-built injector from SECNDP_FAULT_PLAN; False = not probed yet.
_AMBIENT: object = False


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide injector (replaces any prior)."""
    global _INJECTOR
    _INJECTOR = injector
    return injector


def clear() -> None:
    """Remove the installed injector; hot paths go back to one branch."""
    global _INJECTOR
    _INJECTOR = None


def get() -> Optional[FaultInjector]:
    """The installed injector regardless of arming (for introspection)."""
    return _INJECTOR


def armed_injector() -> Optional[FaultInjector]:
    """The installed injector iff it is armed - the hot-site guard."""
    inj = _INJECTOR
    if inj is not None and inj._armed > 0:
        return inj
    return None


@contextmanager
def injected(plan: FaultPlan, arm: bool = True):
    """Install (and optionally arm) a fresh injector for a ``with`` block."""
    global _INJECTOR
    previous = _INJECTOR
    inj = install(FaultInjector(plan))
    if arm:
        inj.arm()
    try:
        yield inj
    finally:
        if arm:
            inj.disarm()
        _INJECTOR = previous


@contextmanager
def armed(injector: Optional[FaultInjector]):
    """Temporarily install *and arm* ``injector`` (no-op when ``None``).

    This is what recovery-enabled serving paths wrap their offload
    attempts in: hook sites fire only inside the block, so everything
    outside - direct protocol use, fallback reads, honest benchmarks -
    stays fault-free even with a process-wide plan in the environment.
    """
    if injector is None:
        yield None
        return
    global _INJECTOR
    previous = _INJECTOR
    _INJECTOR = injector
    injector.arm()
    try:
        yield injector
    finally:
        injector.disarm()
        _INJECTOR = previous


def ambient_injector() -> Optional[FaultInjector]:
    """Injector described by ``SECNDP_FAULT_PLAN``, built once per process.

    Returns None when the variable is unset, empty, or unparsable (a bad
    plan must never take the serving path down - that would be the fault
    injector injecting a fault into itself).
    """
    global _AMBIENT
    if _AMBIENT is False:
        raw = os.environ.get(ENV_FAULT_PLAN, "").strip()
        if not raw:
            _AMBIENT = None
        else:
            try:
                plan = FaultPlan.parse(raw)
                _AMBIENT = None if plan.empty else FaultInjector(plan)
            except Exception:
                _AMBIENT = None
    return _AMBIENT
