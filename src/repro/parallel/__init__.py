"""Process-pool execution engine for SecNDP serving and harness sweeps.

Two entry points:

* :class:`ParallelSlsEngine` — shards a loaded
  :class:`~repro.workloads.secure_sls.SecureEmbeddingStore` row-wise
  across a spawn pool whose workers read ciphertext and tags from
  ``multiprocessing.shared_memory`` arenas, and recombines the
  arithmetic shares on the trusted side (bit-identical to the
  sequential path; see DESIGN.md Sec. 10).
* :func:`parallel_map` — order-preserving fan-out for independent
  harness cells (figure/table grids), with worker-side metrics and
  trace events merged back into the parent's :mod:`repro.obs` state.

Worker counts resolve through one policy (:func:`resolve_workers`):
explicit argument, then ``SECNDP_WORKERS``, then in-process.  Every
failure mode degrades to the sequential path, never to an error.
"""

from .engine import ParallelSlsEngine
from .pmap import default_workers, parallel_map, resolve_workers
from .shm import shared_memory_available

__all__ = [
    "ParallelSlsEngine",
    "parallel_map",
    "resolve_workers",
    "default_workers",
    "shared_memory_available",
]
