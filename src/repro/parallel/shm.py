"""Shared-memory arenas for ciphertext and tag data.

The parallel serving engine places each table's ciphertext matrix (and
its packed per-row tags) into ``multiprocessing.shared_memory`` segments
so every pool worker maps the *same* physical pages — attaching is a
zero-copy ``mmap``, not a pickle round-trip.  This mirrors the paper's
deployment picture: ciphertext and encrypted tags are public, shared,
untrusted data; only the key and the regenerated OTPs are private, and
those travel once per pool start inside the worker initializer.

Tags are field elements up to 127 bits (``q = 2^127 - 1``), which numpy
cannot hold natively; :func:`pack_tags` splits each into two ``uint64``
limbs for the arena and :func:`unpack_tags` rebuilds Python ints on the
worker side.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

import numpy as np

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - stdlib module, but stay importable
    _shm = None

__all__ = [
    "shared_memory_available",
    "ArraySpec",
    "create_shared_array",
    "attach_shared_array",
    "pack_tags",
    "unpack_tags",
]

_U64_MASK = (1 << 64) - 1


def shared_memory_available() -> bool:
    """Probe whether shared-memory segments can actually be created.

    ``/dev/shm`` may be missing or unwritable in minimal containers; the
    engine uses this probe to degrade to the in-process path instead of
    failing at pool start.
    """
    if _shm is None:
        return False
    try:
        seg = _shm.SharedMemory(create=True, size=16)
    except Exception:
        return False
    seg.close()
    try:
        seg.unlink()
    except Exception:
        pass
    return True


class ArraySpec(NamedTuple):
    """Picklable handle for a shared numpy array (name + geometry)."""

    name: str
    shape: tuple
    dtype: str


def create_shared_array(arr: np.ndarray):
    """Copy ``arr`` into a fresh shared segment.

    Returns ``(spec, segment)``; the caller owns the segment and must
    ``close()`` + ``unlink()`` it when the pool shuts down.
    """
    arr = np.ascontiguousarray(arr)
    seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    return ArraySpec(seg.name, tuple(arr.shape), np.dtype(arr.dtype).str), seg


def attach_shared_array(spec: ArraySpec):
    """Map an existing shared segment as a numpy array (zero-copy).

    Pool workers share the parent's resource-tracker process, whose
    per-name cache deduplicates the attach-side re-registration that
    pre-3.13 ``SharedMemory`` performs — so the owner's single
    ``unlink()`` keeps the tracker clean and attachers do nothing extra.
    """
    seg = _shm.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
    return view, seg


def pack_tags(tags: List[int]) -> np.ndarray:
    """Pack field-element tags (< 2^128) into ``(n, 2)`` uint64 limbs."""
    out = np.empty((len(tags), 2), dtype=np.uint64)
    for i, tag in enumerate(tags):
        tag = int(tag)
        out[i, 0] = tag & _U64_MASK
        out[i, 1] = tag >> 64
    return out


def unpack_tags(packed: np.ndarray) -> List[int]:
    """Inverse of :func:`pack_tags` — rebuilds Python ints."""
    return [int(lo) | (int(hi) << 64) for lo, hi in packed.tolist()]
