"""Sharded SecNDP serving engine over a spawn pool + shared memory.

:class:`ParallelSlsEngine` wraps a loaded
:class:`~repro.workloads.secure_sls.SecureEmbeddingStore` and serves its
``sls_many`` batches across N worker processes:

* **Arena layout** — each table's ciphertext matrix and packed per-row
  tags are copied once into ``multiprocessing.shared_memory`` segments
  (:mod:`repro.parallel.shm`); every worker maps the same pages
  zero-copy.  Ciphertext and encrypted tags are untrusted/public data in
  the threat model, so sharing them wholesale leaks nothing.
* **Key broadcast** — the pool initializer rebuilds a
  :class:`~repro.core.protocol.SecNDPProcessor` (key + params travel
  exactly once, at pool start) and an
  :class:`~repro.core.protocol.UntrustedNdpDevice` whose store points at
  the shared arenas.  Each worker owns a private OTP pad cache.
* **Row ownership** — rows are partitioned into N contiguous ranges; a
  batch is served by masking every query down to each worker's range,
  running :meth:`~repro.core.protocol.SecNDPProcessor.partial_row_sum_batch`
  per shard, and recombining the shares on the trusted side with
  :meth:`~repro.core.protocol.SecNDPProcessor.finalize_row_sum_batch`.
  Ring and field arithmetic are exact, so the recombined totals are
  bit-identical to the sequential path for any worker count.
* **Degradation** — construction falls back to ``workers = 0``
  (in-process delegation to the store) whenever shared memory is
  unavailable or the pool fails its startup ping, so the engine is
  always safe to instantiate.
* **Liveness hardening** — every batch dispatch carries a deadline
  (``task_timeout`` / ``SECNDP_TASK_TIMEOUT``): a crashed, hung or
  raising worker fails the dispatch instead of wedging the parent, the
  pool is respawned once and the batch retried, and a second failure
  degrades the engine permanently to in-process serving.  When the
  wrapped store carries a :class:`~repro.faults.recovery.RecoveryPolicy`,
  its fault injector supplies per-task worker directives (crash / raise
  / hang) drawn parent-side from the seeded plan, and verification
  failures at recombination delegate the batch to the store's recovery
  ladder.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .. import kernels, obs
from ..core.checksum import MultiPointChecksum
from ..core.encryption import EncryptedMatrix
from ..core.protocol import PartialSumShare, SecNDPProcessor, UntrustedNdpDevice
from ..crypto.otp import OtpCacheInfo, merge_cache_info
from ..errors import ConfigurationError, VerificationError
from .pmap import POOL_START_TIMEOUT, resolve_workers
from .shm import (
    ArraySpec,
    attach_shared_array,
    create_shared_array,
    pack_tags,
    shared_memory_available,
    unpack_tags,
)

__all__ = [
    "ParallelSlsEngine",
    "ENV_TASK_TIMEOUT",
    "DEFAULT_TASK_TIMEOUT",
    "ENV_SNAPSHOT_INTERVAL",
]

#: Per-batch dispatch deadline in seconds; a crashed or hung worker must
#: not wedge the parent past this.
ENV_TASK_TIMEOUT = "SECNDP_TASK_TIMEOUT"
DEFAULT_TASK_TIMEOUT = 60.0

#: Minimum seconds between metric-snapshot pushes from a worker.  The
#: default (0) ships a snapshot with *every* task result — maximum
#: fidelity for the parent's live fleet view; a positive interval lets a
#: worker accumulate across tasks and ship at most one snapshot per
#: interval, trading freshness for smaller result payloads.
ENV_SNAPSHOT_INTERVAL = "SECNDP_SNAPSHOT_INTERVAL"


def resolve_task_timeout(value: Optional[float] = None) -> float:
    """Explicit value, else ``SECNDP_TASK_TIMEOUT``, else the default."""
    if value is not None:
        return float(value)
    raw = os.environ.get(ENV_TASK_TIMEOUT, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_TASK_TIMEOUT


def resolve_snapshot_interval(value: Optional[float] = None) -> float:
    """Explicit value, else ``SECNDP_SNAPSHOT_INTERVAL``, else 0 (per task)."""
    if value is not None:
        return max(0.0, float(value))
    raw = os.environ.get(ENV_SNAPSHOT_INTERVAL, "").strip()
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return 0.0


class _TableSpec(NamedTuple):
    """Everything a worker needs to rebuild one table's device view."""

    name: str
    cipher_spec: ArraySpec
    tags_spec: Optional[ArraySpec]
    base_addr: int
    version: int
    checksum_version: Optional[int]
    tag_version: Optional[int]


class _PoolSpec(NamedTuple):
    """One-time broadcast at pool start: key, params, table handles.

    When the wrapped store has hot-row tiering attached, the hot-row
    lists and skew-derived cache capacities ride along so every worker
    prewarms its *private* pad caches at init — tasks can land on any
    worker (``map_async``), so each one needs the full hot set, not a
    shard-local slice.
    """

    key: bytes
    params: object
    multipoint: bool
    tables: Tuple[_TableSpec, ...]
    #: per-table hot rows to prewarm, ``((name, (row, ...)), ...)``
    hot_rows: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    #: skew-derived OTP LRU capacity (0 keeps the default)
    cache_blocks: int = 0
    #: skew-derived tag-pad LRU capacity (0 keeps tag caching off)
    tag_cache_rows: int = 0
    #: skew-derived row-pad LRU capacity (0 keeps row caching off)
    row_cache_rows: int = 0
    #: resolved kernel tier broadcast to workers ("" keeps worker-side
    #: auto resolution); workers warm kernels at spawn, never per task
    kernel_tier: str = ""


# -- worker side ---------------------------------------------------------------

_WORKER: Optional[dict] = None


def _engine_worker_init(spec: _PoolSpec, counter) -> None:
    """Pool initializer: attach arenas, rebuild protocol parties."""
    global _WORKER
    with counter.get_lock():
        wid = counter.value
        counter.value += 1
    obs.set_worker_label(wid)
    # Pin this worker to the parent's resolved kernel tier and pay any
    # one-time JIT/dlopen cost here, at spawn — tasks must never re-JIT.
    # A tier the worker cannot satisfy (e.g. the parent compiled native
    # kernels but this host's cache is gone and compilation now fails)
    # degrades to auto rather than killing the pool.
    try:
        kernels.set_tier(spec.kernel_tier or None)
    except ConfigurationError:
        kernels.set_tier("auto")
    kernels.warmup()
    processor = SecNDPProcessor(
        spec.key, spec.params, multipoint_checksum=spec.multipoint
    )
    device = UntrustedNdpDevice(spec.params)
    segments = []
    for table in spec.tables:
        ciphertext, seg = attach_shared_array(table.cipher_spec)
        segments.append(seg)
        tags = None
        if table.tags_spec is not None:
            packed, tag_seg = attach_shared_array(table.tags_spec)
            segments.append(tag_seg)
            tags = unpack_tags(packed)
        device.store(
            table.name,
            EncryptedMatrix(
                ciphertext=ciphertext,
                base_addr=table.base_addr,
                version=table.version,
                params=spec.params,
                tags=tags,
                checksum_version=table.checksum_version,
                tag_version=table.tag_version,
            ),
        )
    if spec.cache_blocks:
        processor.encryptor.otp.resize_cache(spec.cache_blocks)
    if spec.row_cache_rows:
        processor.encryptor.resize_row_cache(spec.row_cache_rows)
    if spec.tag_cache_rows:
        processor.mac.resize_tag_cache(spec.tag_cache_rows)
    for name, rows in spec.hot_rows:
        # Prewarm this worker's private caches for the broadcast hot set:
        # one AES sweep per table at spawn instead of cold misses on the
        # first queries each worker serves.
        enc = device.stored(name)
        processor.encryptor.pads_for_rows(enc, list(rows))
        if spec.tag_cache_rows and enc.tag_version is not None:
            processor.mac.tag_pads_for_rows(enc, list(rows))
    _WORKER = {
        "wid": wid,
        "processor": processor,
        "device": device,
        "segments": segments,
    }


def _engine_ping(_: int) -> bool:
    return _WORKER is not None


def _engine_sls_task(args):
    """One shard's share of a batch; runs on a pool worker."""
    (
        name,
        sub_rows,
        sub_weights,
        with_tags,
        collect_metrics,
        collect_trace,
        snapshot_interval,
        directive,
    ) = args
    if directive is not None:
        # Parent-side fault injection: workers never own an injector (all
        # randomness lives in one seeded parent stream); they just obey.
        action = directive[0]
        if action == "crash":
            os._exit(3)
        elif action == "raise":
            raise RuntimeError("injected worker fault (worker_raise)")
        elif action == "hang":
            time.sleep(float(directive[1]))
    if collect_metrics:
        obs.enable()
    if collect_trace:
        obs.enable_tracing()
    processor: SecNDPProcessor = _WORKER["processor"]
    device: UntrustedNdpDevice = _WORKER["device"]
    with obs.span("parallel.shard"):
        part = processor.partial_row_sum_batch(
            device, name, sub_rows, sub_weights, with_tag_shares=with_tags
        )
    # Periodic live push: with the default interval of 0 every task
    # result carries a snapshot (the parent merges them as they arrive,
    # so the fleet view is live, not teardown-time); a positive interval
    # accumulates in the worker's registry and ships at most once per
    # interval.  The registry is reset only when a snapshot actually
    # ships, so nothing is double-counted and at most one interval's
    # tail is lost at teardown.
    snap = None
    if collect_metrics:
        now = time.monotonic()
        if snapshot_interval <= 0 or now - _WORKER.get("last_push", 0.0) >= snapshot_interval:
            snap = obs.snapshot(include_samples=True)
            obs.reset()
            _WORKER["last_push"] = now
    events = obs.trace_events() if collect_trace else None
    if collect_trace:
        obs.clear_trace()
    cache = (
        processor.encryptor.otp.cache_info(),
        processor.mac.tag_cache_info(),
    )
    return _WORKER["wid"], part.values, part.tag_shares, snap, events, cache


# -- trusted / parent side -----------------------------------------------------


class ParallelSlsEngine:
    """Serve a store's batched SLS queries across a worker pool.

    Parameters
    ----------
    store:
        A loaded :class:`SecureEmbeddingStore`; tables added *after*
        engine construction are served in-process only.
    workers:
        Worker count; ``None`` defers to ``SECNDP_WORKERS`` (else 0) via
        :func:`~repro.parallel.pmap.resolve_workers`.  ``0`` delegates
        every call straight to ``store.sls_many`` — identical behaviour,
        no processes, no shared memory.
    task_timeout:
        Seconds a batch dispatch may take before the pool is declared
        unhealthy; ``None`` defers to ``SECNDP_TASK_TIMEOUT`` (else 60).
    snapshot_interval:
        Minimum seconds between a worker's metric-snapshot pushes;
        ``None`` defers to ``SECNDP_SNAPSHOT_INTERVAL`` (else 0 = one
        snapshot per task, the highest-fidelity live fleet view).

    Use as a context manager (or call :meth:`close`) so the pool and the
    shared segments are released deterministically.
    """

    def __init__(
        self,
        store,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        snapshot_interval: Optional[float] = None,
    ):
        self.store = store
        self.workers = resolve_workers(workers)
        self.task_timeout = resolve_task_timeout(task_timeout)
        self.snapshot_interval = resolve_snapshot_interval(snapshot_interval)
        self._pool = None
        self._segments: list = []
        self._bounds: Dict[str, np.ndarray] = {}
        self._versions: Dict[str, int] = {}
        # wid -> (otp OtpCacheInfo, tag OtpCacheInfo), trailing by one batch
        self._worker_cache: Dict[int, Tuple[OtpCacheInfo, OtpCacheInfo]] = {}
        self._offload: Optional[ThreadPoolExecutor] = None
        self._closed = False
        if self.workers >= 1:
            if not shared_memory_available():
                obs.inc("parallel.engine.fallback")
                self.workers = 0
            else:
                try:
                    self._start_pool()
                except Exception:
                    self._teardown()
                    obs.inc("parallel.engine.fallback")
                    self.workers = 0

    # -- lifecycle -------------------------------------------------------------

    def _start_pool(self) -> None:
        store = self.store
        table_specs: List[_TableSpec] = []
        for name in store.tables():
            enc = store.device.stored(name)
            cipher_spec, seg = create_shared_array(enc.ciphertext)
            self._segments.append(seg)
            tags_spec = None
            if enc.tags is not None:
                tags_spec, tag_seg = create_shared_array(pack_tags(enc.tags))
                self._segments.append(tag_seg)
            table_specs.append(
                _TableSpec(
                    name=name,
                    cipher_spec=cipher_spec,
                    tags_spec=tags_spec,
                    base_addr=enc.base_addr,
                    version=enc.version,
                    checksum_version=enc.checksum_version,
                    tag_version=enc.tag_version,
                )
            )
            n_rows = store._tables[name].n_rows
            self._bounds[name] = np.linspace(
                0, n_rows, self.workers + 1
            ).astype(np.int64)
            # Snapshot of the version the arena was exported under;
            # re-encryption (recovery rung 4) bumps it, flagging the
            # shared copy as stale.
            self._versions[name] = enc.version
        # Hot-row tiering broadcast: if the store tracks a hot set, ship
        # it (plus the skew-derived cache capacities) to every worker so
        # private pad caches start warm.  Tasks are scheduled on whichever
        # worker is free, so each worker needs the *full* hot set.
        hot_rows: List[Tuple[str, Tuple[int, ...]]] = []
        cache_blocks = tag_cache_rows = row_cache_rows = 0
        tiering = getattr(store, "_tiering", None)
        if tiering is not None:
            cache_blocks, tag_cache_rows = tiering.apply_sizing()
            row_cache_rows = tag_cache_rows
            if not tiering.config.prewarm_tags or not store.verify:
                tag_cache_rows = 0
            for name in store.tables():
                hot = tiering.hot_rows(name)
                if hot.size:
                    hot_rows.append((name, tuple(int(r) for r in hot)))
            obs.gauge("tiering.broadcast_rows", sum(len(r) for _, r in hot_rows))
        spec = _PoolSpec(
            key=store.processor.cipher.key,
            params=store.processor.params,
            multipoint=isinstance(store.processor.checksum, MultiPointChecksum),
            tables=tuple(table_specs),
            hot_rows=tuple(hot_rows),
            cache_blocks=cache_blocks,
            tag_cache_rows=tag_cache_rows,
            row_cache_rows=row_cache_rows,
            kernel_tier=kernels.active_tier(),
        )
        ctx = mp.get_context("spawn")
        counter = ctx.Value("i", 0)
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_engine_worker_init,
            initargs=(spec, counter),
        )
        # Health check: a crash-looping spawn (broken __main__ etc.)
        # would otherwise hang the first real query forever.
        self._pool.map_async(_engine_ping, range(self.workers)).get(
            timeout=POOL_START_TIMEOUT
        )
        obs.gauge("parallel.engine.workers", self.workers)

    def _teardown(self) -> None:
        # Teardown must always complete (a poisoned pool still has to
        # release its shared segments), but swallowed failures are
        # counted rather than silently dropped.
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:
                obs.inc("parallel.teardown_errors")
            self._pool = None
        for seg in self._segments:
            try:
                seg.close()
            except Exception:
                obs.inc("parallel.teardown_errors")
            try:
                seg.unlink()
            except Exception:
                obs.inc("parallel.teardown_errors")
        self._segments = []

    def _respawn(self) -> bool:
        """Tear the pool down and rebuild it from the store's live state."""
        obs.inc("parallel.engine.respawns")
        obs.emit_event(obs.POOL_RESPAWN, workers=self.workers)
        self._teardown()
        self._bounds = {}
        self._versions = {}
        try:
            self._start_pool()
            return True
        except Exception:
            self._teardown()
            return False

    def _degrade(self) -> None:
        """Give up on the pool for good; serve in-process from now on."""
        obs.inc("parallel.engine.degraded")
        obs.emit_event(obs.POOL_DEGRADE, workers=self.workers)
        self._teardown()
        self.workers = 0

    def ping(self) -> bool:
        """True iff the serving path is healthy.

        With a pool, every worker must answer within the startup timeout;
        without one (``workers == 0``), in-process serving is always
        healthy.
        """
        if self.workers == 0 or self._pool is None:
            return True
        try:
            replies = self._pool.map_async(_engine_ping, range(self.workers)).get(
                timeout=POOL_START_TIMEOUT
            )
            return all(replies)
        except Exception:
            return False

    def close(self) -> None:
        """Shut the pool down and unlink the shared arenas (idempotent).

        The offload executor (if :meth:`submit` was ever used) is drained
        first — an in-flight batch completes, queued-but-unstarted work
        is cancelled — so no thread outlives the pool it dispatches to.
        """
        if not self._closed:
            if self._offload is not None:
                try:
                    self._offload.shutdown(wait=True, cancel_futures=True)
                except Exception:
                    obs.inc("parallel.teardown_errors")
                self._offload = None
            self._teardown()
            self._closed = True

    def __enter__(self) -> "ParallelSlsEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    # -- serving ---------------------------------------------------------------

    def sls_many(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> np.ndarray:
        """Batched verified SLS, sharded across the pool.

        Validation (overflow budget, weight sanity) runs on the trusted
        side via the store's shared ``_validate_query`` helper before any
        work is dispatched; verification runs on the recombined totals.
        Bit-identical to ``store.sls_many`` for every worker count.
        """
        store = self.store
        if self.workers == 0 or self._pool is None or name not in self._bounds:
            return store.sls_many(name, batch_rows, batch_weights)
        enc = store.device.stored(name)
        if enc.version != self._versions.get(name):
            # The store re-encrypted this table (recovery rung 4) after
            # the arenas were exported; the workers' shared copy is stale
            # ciphertext under retired versions.  Rebuild the pool from
            # the live device before serving.
            obs.inc("parallel.engine.stale_table")
            obs.emit_event(
                obs.STALE_ARENA,
                table=name,
                version=enc.version,
                arena_version=self._versions.get(name),
            )
            if not self._respawn():
                self._degrade()
                return store.sls_many(name, batch_rows, batch_weights)
        entry = store._tables[name]
        rows_list, weights_list = store._validate_batch(name, batch_rows, batch_weights)

        n_rows = entry.n_rows
        norm_rows = []
        for rows in rows_list:
            arr = np.asarray(rows, dtype=np.int64)
            # Same contract as the store path (EncryptedMatrix indexing):
            # no negative-index wrapping, fail before dispatching work.
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= n_rows):
                bad = int(arr[(arr < 0) | (arr >= n_rows)][0])
                raise IndexError(f"row {bad} out of range [0, {n_rows})")
            norm_rows.append(arr)

        bounds = self._bounds[name]
        collect_metrics = obs.enabled()
        collect_trace = obs.tracing_enabled()
        # Worker fault directives are drawn parent-side from the store's
        # seeded injector - only for recovery-enabled stores, which can
        # absorb the resulting retries/degradation.
        injector = (
            getattr(store, "fault_injector", None)
            if getattr(store, "recovery", None) is not None
            else None
        )
        tasks = []
        for w in range(self.workers):
            lo, hi = int(bounds[w]), int(bounds[w + 1])
            sub_rows: List[List[int]] = []
            sub_weights: List[List[int]] = []
            owned = 0
            for arr, weights in zip(norm_rows, weights_list):
                mask = (arr >= lo) & (arr < hi)
                owned += int(mask.sum())
                sub_rows.append(arr[mask].tolist())
                sub_weights.append(
                    [weights[k] for k in np.flatnonzero(mask)]
                )
            # A shard that owns no row of the batch would return pure
            # ring/field identities (zero values, zero tag shares) - an
            # exact no-op under recombination, so skip the round trip.
            if owned == 0:
                continue
            directive = (
                injector.worker_directive("engine.task") if injector is not None else None
            )
            tasks.append(
                (
                    name,
                    sub_rows,
                    sub_weights,
                    store.verify,
                    collect_metrics,
                    collect_trace,
                    self.snapshot_interval,
                    directive,
                )
            )
        if not tasks:
            # Every query was empty; the store path answers identically
            # (all-zero pools scaled by the table's affine params).
            return store.sls_many(name, batch_rows, batch_weights)

        obs.inc("parallel.batch.calls")
        obs.inc("parallel.batch.queries", len(rows_list))
        payloads = self._dispatch(tasks)
        if payloads is None:
            # Dispatch failed (worker crash/hang/exception).  Respawn the
            # pool once and retry with fault directives stripped - a
            # retried batch must be able to succeed - then degrade.
            if self._respawn():
                payloads = self._dispatch([t[:7] + (None,) for t in tasks])
            if payloads is None:
                self._degrade()
                return store.sls_many(name, batch_rows, batch_weights)

        partials: List[PartialSumShare] = []
        shard_labels: List[int] = []
        for wid, values, tag_shares, snap, events, cache in payloads:
            if snap is not None:
                obs.merge(snap)
            if events:
                obs.ingest_events(events)
            self._worker_cache[wid] = cache
            partials.append(PartialSumShare(values=values, tag_shares=tag_shares))
            shard_labels.append(wid)

        enc = store.device.stored(name)
        try:
            # Per-shard verification before combining: a failed check
            # names the worker whose share lied (ShardVerificationError,
            # a VerificationError subclass), so the delegation event
            # below carries blame instead of just "the batch failed".
            with obs.span("parallel.finalize"):
                results = store.processor.finalize_row_sum_batch(
                    enc,
                    name,
                    partials,
                    verify=store.verify,
                    per_shard=store.verify,
                    shard_labels=shard_labels,
                )
        except VerificationError as exc:
            if getattr(store, "recovery", None) is None:
                raise
            # Sec. V-E3 interrupt on the recombined totals: hand the
            # batch to the store's recovery ladder (retry -> trusted
            # recompute -> repair), which serves it bit-exactly.
            obs.inc("recovery.detections")
            obs.inc("parallel.engine.recovery_delegations")
            obs.emit_event(
                obs.RECOVERY_DELEGATION,
                table=name,
                rows=sorted({int(r) for rows in rows_list for r in rows}),
                queries=len(rows_list),
                shard=getattr(exc, "shard", None),
            )
            return store.sls_many(name, batch_rows, batch_weights)
        out = np.zeros((len(rows_list), entry.dim))
        for i, (result, weights) in enumerate(zip(results, weights_list)):
            pooled_q = result.values.astype(np.float64)[: entry.dim]
            out[i] = pooled_q * entry.scale + entry.bias * float(sum(weights))
        return out

    # -- non-blocking submission -----------------------------------------------

    def offload(self, fn, *args, **kwargs) -> Future:
        """Run ``fn`` on the engine's single offload thread; return a future.

        The pool's ``map_async(...).get(timeout)`` round trip blocks its
        calling thread (releasing the GIL), so an asyncio server must not
        run it on the event loop.  A dedicated one-thread executor keeps
        submission non-blocking while serialising all store/pool access
        through a single thread — the store's caches and the pool handle
        are not thread-safe, and one serialisation domain means they
        never race.
        """
        if self._closed:
            raise ConfigurationError("engine is closed")
        if self._offload is None:
            self._offload = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="secndp-engine"
            )
        return self._offload.submit(fn, *args, **kwargs)

    def submit(
        self,
        name: str,
        batch_rows: Sequence[Sequence[int]],
        batch_weights: Optional[Sequence[Sequence[int]]] = None,
    ) -> Future:
        """Non-blocking :meth:`sls_many`: dispatch and return a future.

        The asyncio serving layer awaits this via
        ``asyncio.wrap_future``; blocking callers can use
        ``submit(...).result()``.  Exceptions (verification failures,
        configuration errors) surface through the future.
        """
        return self.offload(self.sls_many, name, batch_rows, batch_weights)

    def _dispatch(self, tasks) -> Optional[list]:
        """One timed fan-out; ``None`` signals an unhealthy pool."""
        try:
            with obs.span("parallel.batch"):
                return self._pool.map_async(_engine_sls_task, tasks).get(
                    timeout=self.task_timeout
                )
        except Exception as exc:
            obs.inc("parallel.engine.task_failures")
            obs.emit_event(
                obs.TASK_FAILURE,
                table=tasks[0][0] if tasks else None,
                error=type(exc).__name__,
            )
            return None

    # -- introspection ---------------------------------------------------------

    def cache_info(self) -> OtpCacheInfo:
        """Fleet-wide OTP pad-cache statistics.

        Merges the parent store's generator with the last-reported state
        of every worker's private cache (workers report alongside each
        task result, so the numbers trail in-flight work by one batch).
        """
        infos = [self.store.processor.encryptor.otp.cache_info()]
        infos.extend(self._worker_cache[w][0] for w in sorted(self._worker_cache))
        return merge_cache_info(infos)

    def tag_cache_info(self) -> OtpCacheInfo:
        """Fleet-wide tag-pad cache statistics (store + workers)."""
        infos = [self.store.processor.mac.tag_cache_info()]
        infos.extend(self._worker_cache[w][1] for w in sorted(self._worker_cache))
        return merge_cache_info(infos)
