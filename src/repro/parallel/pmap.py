"""Worker-count resolution and a metrics-preserving ``parallel_map``.

One policy for the whole repo: an explicit ``workers`` argument wins,
else the ``SECNDP_WORKERS`` environment variable, else the library stays
in-process (``0``).  The CLI layers its own ``os.cpu_count()``-aware
default on top via :func:`default_workers`.

``parallel_map`` runs independent items through a shared spawn pool and
drains each task's worker-side :mod:`repro.obs` state (metric snapshots,
trace events) back into the parent, so instrumented harness sweeps lose
nothing by going parallel.  Every failure mode — spawn unavailable,
pool startup hanging, shared state unpicklable — degrades to the plain
in-process ``map``.
"""

from __future__ import annotations

import atexit
import functools
import multiprocessing as mp
import os
from typing import Callable, Iterable, List, Optional

from .. import obs

__all__ = ["resolve_workers", "default_workers", "parallel_map"]

ENV_WORKERS = "SECNDP_WORKERS"

#: Startup ping budget: a healthy spawn pool answers in well under a
#: second; a crash-looping one (broken __main__, missing interpreter
#: state) would otherwise respawn workers forever.
POOL_START_TIMEOUT = 30.0


def _env_workers() -> Optional[int]:
    raw = os.environ.get(ENV_WORKERS)
    if raw is None:
        return None
    try:
        return max(0, int(raw))
    except ValueError:
        return None


def default_workers() -> int:
    """CLI default: ``SECNDP_WORKERS`` if set, else the CPU count."""
    env = _env_workers()
    if env is not None:
        return env
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count for a library call.

    ``workers`` (clamped at 0) wins when given; otherwise the
    ``SECNDP_WORKERS`` environment variable; otherwise 0 — parallelism
    is opt-in below the CLI.  Inside a daemonic pool worker the answer
    is always 0: nested pools are unsupported by multiprocessing.
    """
    if mp.current_process().daemon:
        return 0
    if workers is not None:
        return max(0, int(workers))
    env = _env_workers()
    return env if env is not None else 0


# -- shared task pools ---------------------------------------------------------

_POOLS: dict = {}


def _shutdown_pools() -> None:
    for pool in _POOLS.values():
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass
    _POOLS.clear()


atexit.register(_shutdown_pools)


def _pmap_init(counter) -> None:
    with counter.get_lock():
        wid = counter.value
        counter.value += 1
    obs.set_worker_label(f"pmap-{wid}")


def _pmap_ping(_: int) -> int:
    return os.getpid()


def _get_pool(n: int):
    """A lazily created spawn pool of size ``n``, health-checked once."""
    pool = _POOLS.get(n)
    if pool is None:
        ctx = mp.get_context("spawn")
        counter = ctx.Value("i", 0)
        pool = ctx.Pool(processes=n, initializer=_pmap_init, initargs=(counter,))
        try:
            pool.map_async(_pmap_ping, range(n)).get(timeout=POOL_START_TIMEOUT)
        except Exception:
            pool.terminate()
            pool.join()
            raise
        _POOLS[n] = pool
    return pool


def _pmap_task(item, fn: Callable, collect_metrics: bool, collect_trace: bool):
    """Runs in the worker: call ``fn`` and capture its obs delta."""
    if collect_metrics:
        obs.enable()
    if collect_trace:
        obs.enable_tracing()
    result = fn(item)
    snap = obs.snapshot(include_samples=True) if collect_metrics else None
    events = obs.trace_events() if collect_trace else None
    if collect_metrics:
        obs.reset()
    if collect_trace:
        obs.clear_trace()
    return result, snap, events


def parallel_map(fn: Callable, items: Iterable, workers: Optional[int] = None) -> List:
    """``[fn(x) for x in items]``, fanned across a spawn pool.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` of one) and so must the items and results.
    Order is preserved.  With an effective worker count of 0 or 1 — or
    whenever the pool cannot be started — this is exactly the in-process
    list comprehension, which is what makes results deterministic
    regardless of worker count: each item is computed independently
    either way.

    Worker-side metrics and trace events are merged into the parent's
    registries after every task, so ``--stats`` output is complete.
    """
    items = list(items)
    n = min(resolve_workers(workers), len(items))
    if n <= 1:
        return [fn(item) for item in items]
    try:
        pool = _get_pool(n)
    except Exception:
        obs.inc("parallel.map.fallback")
        return [fn(item) for item in items]
    obs.inc("parallel.map.calls")
    task = functools.partial(
        _pmap_task,
        fn=fn,
        collect_metrics=obs.enabled(),
        collect_trace=obs.tracing_enabled(),
    )
    results: List = []
    for result, snap, events in pool.map(task, items):
        if snap is not None:
            obs.merge(snap)
        if events:
            obs.ingest_events(events)
        results.append(result)
    return results
