"""AES-128 block cipher, implemented from scratch (FIPS-197).

SecNDP derives its one-time pads and checksum secrets from a block cipher
``E(K, X)`` (paper Sec. III-B, IV-A).  The repository cannot rely on any
external crypto library, so this module provides two interchangeable
implementations:

* :class:`AES128` - a byte-oriented scalar reference implementation that
  follows the FIPS-197 specification closely.  It is the source of truth
  and is validated against the official test vectors in the test suite.
* :func:`aes128_encrypt_blocks` - a NumPy-vectorised implementation that
  encrypts many 16-byte blocks in parallel.  SecNDP generates one OTP
  block per 128 bits of plaintext, so bulk OTP generation dominates the
  functional runtime; the vectorised path keeps large-matrix experiments
  tractable while producing bit-identical output to :class:`AES128`.

Only encryption is implemented.  Counter-mode constructions (and therefore
all of SecNDP) never invoke the inverse cipher: decryption reconstructs
the same pad by re-encrypting the same counter block.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Sequence

import numpy as np

from .. import kernels as _kernels

__all__ = [
    "AES128",
    "aes128_encrypt_blocks",
    "SBOX",
    "BLOCK_BYTES",
    "KEY_BYTES",
]

BLOCK_BYTES = 16
KEY_BYTES = 16
_NUM_ROUNDS = 10

# ---------------------------------------------------------------------------
# S-box construction.
#
# Rather than hard-coding the 256-entry table, we derive it from its
# mathematical definition: multiplicative inverse in GF(2^8) followed by the
# affine transform (FIPS-197 Sec. 5.1.1).  This keeps the implementation
# self-contained and auditable; the test suite pins well-known entries
# (e.g. SBOX[0x00] == 0x63) and full NIST vectors.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> bytes:
    # Build the inverse table by exponentiation: the multiplicative group of
    # GF(2^8) is cyclic with generator 0x03.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 0x03)
    exp[255] = exp[0]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        transformed = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
            ) & 1
            transformed |= b << bit
        sbox[value] = transformed ^ 0x63
    return bytes(sbox)


SBOX: bytes = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# Precomputed GF(2^8) multiply-by-2 and multiply-by-3 tables for MixColumns.
_MUL2 = bytes(_gf_mul(i, 2) for i in range(256))
_MUL3 = bytes(_gf_mul(i, 3) for i in range(256))


def _expand_key(key: bytes) -> List[bytes]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"AES-128 key must be {KEY_BYTES} bytes, got {len(key)}")
    words = [key[4 * i : 4 * i + 4] for i in range(4)]
    for i in range(4, 4 * (_NUM_ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = temp[1:] + temp[:1]
            temp = bytes(SBOX[b] for b in rotated)
            temp = bytes([temp[0] ^ _RCON[i // 4 - 1], temp[1], temp[2], temp[3]])
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(_NUM_ROUNDS + 1)]


class AES128:
    """Scalar reference AES-128 encryption.

    The state is kept as a flat 16-byte list in column-major order, which is
    the same order as the input/output byte sequence (FIPS-197 Sec. 3.4).

    Example
    -------
    >>> cipher = AES128(bytes(range(16)))
    >>> ct = cipher.encrypt_block(bytes(16))
    >>> len(ct)
    16
    """

    def __init__(self, key: bytes):
        self.round_keys = _expand_key(bytes(key))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block and return the 16-byte ciphertext."""
        if len(block) != BLOCK_BYTES:
            raise ValueError(f"block must be {BLOCK_BYTES} bytes, got {len(block)}")
        state = [b ^ k for b, k in zip(block, self.round_keys[0])]
        for rnd in range(1, _NUM_ROUNDS):
            state = _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            rk = self.round_keys[rnd]
            state = [s ^ k for s, k in zip(state, rk)]
        state = _sub_bytes(state)
        state = _shift_rows(state)
        rk = self.round_keys[_NUM_ROUNDS]
        return bytes(s ^ k for s, k in zip(state, rk))

    def encrypt_int(self, block_value: int) -> int:
        """Encrypt a block given as a 128-bit integer (big-endian semantics)."""
        block = block_value.to_bytes(BLOCK_BYTES, "big")
        return int.from_bytes(self.encrypt_block(block), "big")


def _sub_bytes(state: Sequence[int]) -> List[int]:
    return [SBOX[b] for b in state]


# In column-major order, row r of the state occupies indices r, r+4, r+8, r+12.
_SHIFT_ROWS_PERM = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]


def _shift_rows(state: Sequence[int]) -> List[int]:
    return [state[i] for i in _SHIFT_ROWS_PERM]


def _mix_columns(state: Sequence[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a0, a1, a2, a3 = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        out[4 * col + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        out[4 * col + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        out[4 * col + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
    return out


# ---------------------------------------------------------------------------
# Vectorised implementation.
# ---------------------------------------------------------------------------

_SBOX_NP = np.frombuffer(SBOX, dtype=np.uint8)
_MUL2_NP = np.frombuffer(_MUL2, dtype=np.uint8)
_MUL3_NP = np.frombuffer(_MUL3, dtype=np.uint8)
_SHIFT_ROWS_NP = np.array(_SHIFT_ROWS_PERM, dtype=np.intp)


@lru_cache(maxsize=64)
def _round_keys_np(key: bytes) -> tuple:
    return tuple(
        np.frombuffer(rk, dtype=np.uint8) for rk in _expand_key(key)
    )


def aes128_encrypt_blocks(key: bytes, blocks: np.ndarray) -> np.ndarray:
    """Encrypt many blocks at once.

    Parameters
    ----------
    key:
        16-byte AES-128 key.
    blocks:
        ``uint8`` array of shape ``(n, 16)``; each row is one plaintext block
        in the usual byte order.

    Returns
    -------
    ``uint8`` array of shape ``(n, 16)`` with the corresponding ciphertexts,
    bit-identical to calling :meth:`AES128.encrypt_block` row by row.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2 or blocks.shape[1] != BLOCK_BYTES:
        raise ValueError(f"blocks must have shape (n, {BLOCK_BYTES})")
    nat = _kernels.active_native()
    if nat is not None:
        out = nat.aes_blocks(bytes(key), blocks)
        if out is not None:
            return out
    round_keys = _round_keys_np(bytes(key))

    state = blocks ^ round_keys[0]
    for rnd in range(1, _NUM_ROUNDS):
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS_NP]
        state = _mix_columns_np(state)
        state ^= round_keys[rnd]
    state = _SBOX_NP[state]
    state = state[:, _SHIFT_ROWS_NP]
    return state ^ round_keys[_NUM_ROUNDS]


def _mix_columns_np(state: np.ndarray) -> np.ndarray:
    s = state.reshape(-1, 4, 4)  # (n, column, byte-in-column)
    a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    out = np.empty_like(s)
    out[:, :, 0] = _MUL2_NP[a0] ^ _MUL3_NP[a1] ^ a2 ^ a3
    out[:, :, 1] = a0 ^ _MUL2_NP[a1] ^ _MUL3_NP[a2] ^ a3
    out[:, :, 2] = a0 ^ a1 ^ _MUL2_NP[a2] ^ _MUL3_NP[a3]
    out[:, :, 3] = _MUL3_NP[a0] ^ a1 ^ a2 ^ _MUL2_NP[a3]
    return out.reshape(-1, BLOCK_BYTES)
