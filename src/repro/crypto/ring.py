"""Arithmetic in the integer ring Z(2^w_e).

All SecNDP data-path arithmetic (encryption, NDP computation over
ciphertext, OTP-side computation, final reconstruction) happens in the ring
``Z(2^w_e)`` where ``w_e`` is the element bit width (paper Sec. III-C,
IV-A).  The paper requires ``w_e`` to be a power of two no larger than the
block-cipher width; in practice the evaluation uses 8-bit (quantized) and
32-bit elements.

This module centralises ring arithmetic so that every component agrees on
representation: elements are stored as *unsigned* NumPy integers of the
smallest dtype that holds ``w_e`` bits, and signed application values are
mapped in/out with two's-complement semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ring", "RING8", "RING16", "RING32", "RING64"]

_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
_SIGNED_DTYPES = {8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}


@dataclass(frozen=True)
class Ring:
    """The ring Z(2^width) with vectorised modular arithmetic.

    Parameters
    ----------
    width:
        Element bit width ``w_e``; must be one of 8, 16, 32, 64.

    Notes
    -----
    NumPy unsigned arithmetic is already modulo ``2^width`` for these
    dtypes, so ``add``/``sub``/``mul`` compile to plain vector ops; the
    class exists to make the modulus explicit at call sites and to handle
    conversions between signed application values and unsigned residues.
    """

    width: int

    def __post_init__(self) -> None:
        if self.width not in _DTYPES:
            raise ValueError(
                f"unsupported ring width {self.width}; must be one of {sorted(_DTYPES)}"
            )

    @property
    def modulus(self) -> int:
        return 1 << self.width

    @property
    def dtype(self) -> type:
        return _DTYPES[self.width]

    @property
    def signed_dtype(self) -> type:
        return _SIGNED_DTYPES[self.width]

    # -- element conversion -------------------------------------------------

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map signed integers to their two's-complement residues.

        ``encode(-1)`` is ``2^w_e - 1`` etc.  Raises on values outside the
        representable signed/unsigned union so silent wrap-around of
        *application* data cannot happen at the boundary.
        """
        arr = np.asarray(values)
        if np.issubdtype(arr.dtype, np.floating):
            raise TypeError("ring elements must be integers; quantize floats first")
        lo, hi = -(1 << (self.width - 1)), (1 << self.width)
        arr_obj = arr.astype(object) if arr.dtype == object else arr
        if arr.size and (np.min(arr_obj) < lo or np.max(arr_obj) >= hi):
            raise OverflowError(
                f"value outside [{lo}, {hi}) not representable in Z(2^{self.width})"
            )
        return np.mod(arr, self.modulus).astype(self.dtype)

    def decode_signed(self, values: np.ndarray) -> np.ndarray:
        """Interpret residues as signed two's-complement integers."""
        return np.asarray(values, dtype=self.dtype).view(self.signed_dtype)

    # -- ring operations ----------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.asarray(a, dtype=self.dtype) + np.asarray(b, dtype=self.dtype)).astype(self.dtype)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.asarray(a, dtype=self.dtype) - np.asarray(b, dtype=self.dtype)).astype(self.dtype)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.asarray(a, dtype=self.dtype) * np.asarray(b, dtype=self.dtype)).astype(self.dtype)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (-np.asarray(a, dtype=self.dtype)).astype(self.dtype)

    def dot(self, weights: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Weighted summation ``sum_k weights[k] * matrix[k, :] mod 2^w_e``.

        This is the exact operation both the NDP PU (on ciphertext) and the
        OTP PU (on pads) perform in Alg. 4 / 5.  Accumulation stays in the
        ring dtype, so intermediate overflow wraps exactly as hardware would.
        """
        w = np.asarray(weights, dtype=self.dtype)
        m = np.asarray(matrix, dtype=self.dtype)
        if m.ndim == 1:
            m = m[None, :]
        if w.shape[0] != m.shape[0]:
            raise ValueError(
                f"weights length {w.shape[0]} != number of rows {m.shape[0]}"
            )
        acc = np.zeros(m.shape[1], dtype=self.dtype)
        # Row-by-row accumulation mirrors the NDP PU's multiply-accumulate
        # and keeps everything in-ring; a BLAS dot would promote dtypes.
        for k in range(w.shape[0]):
            acc += w[k] * m[k]
        return acc

    # -- byte packing ---------------------------------------------------------

    def from_bytes(self, data: np.ndarray) -> np.ndarray:
        """Reinterpret a uint8 array as ring elements (little-endian).

        Used to slice block-cipher output (OTP bytes) into ``w_e``-bit OTP
        elements, the `e_j` strings of Alg. 1 line 10.
        """
        flat = np.ascontiguousarray(data, dtype=np.uint8)
        if flat.size * 8 % self.width:
            raise ValueError("byte buffer does not divide into ring elements")
        return flat.reshape(-1).view(self.dtype)

    def to_bytes(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`from_bytes`."""
        return np.ascontiguousarray(values, dtype=self.dtype).reshape(-1).view(np.uint8)


RING8 = Ring(8)
RING16 = Ring(16)
RING32 = Ring(32)
RING64 = Ring(64)
