"""Cryptographic substrate: AES-128, tweaked counter systems, rings, fields.

Everything SecNDP needs from "a block cipher" and "modular arithmetic" is
implemented here from scratch; the :mod:`repro.core` package builds the
paper's algorithms on top of these primitives.
"""

from .aes import AES128, BLOCK_BYTES, KEY_BYTES, aes128_encrypt_blocks
from .prime_field import F127, MERSENNE_127, PrimeField, mersenne_reduce
from .ring import RING8, RING16, RING32, RING64, Ring
from .tweaked import (
    DOMAIN_CHECKSUM,
    DOMAIN_DATA,
    DOMAIN_TAG,
    CounterBlockLayout,
    TweakedCipher,
)
from .otp import OtpGenerator
from . import limb_field

__all__ = [
    "limb_field",
    "AES128",
    "BLOCK_BYTES",
    "KEY_BYTES",
    "aes128_encrypt_blocks",
    "F127",
    "MERSENNE_127",
    "PrimeField",
    "mersenne_reduce",
    "RING8",
    "RING16",
    "RING32",
    "RING64",
    "Ring",
    "DOMAIN_CHECKSUM",
    "DOMAIN_DATA",
    "DOMAIN_TAG",
    "CounterBlockLayout",
    "TweakedCipher",
    "OtpGenerator",
]
