"""Vectorized limb arithmetic in GF(2^127 - 1).

The scalar :class:`~repro.crypto.prime_field.PrimeField` is exact and
easy to audit, but every operation is one Python big-int op, so tagging
or verifying a large matrix costs ``O(n*m)`` interpreted field
operations — the dominant cost of functional-scale runs.  This module
is the batched counterpart: field elements are decomposed into four
32-bit limbs held in ``uint64`` lanes (shape ``(..., 4)``, little-endian
limb order), and add/sub/mul/Horner/dot are NumPy sweeps over whole
vectors of elements at once.

Reduction uses the same shift-add Mersenne folding the paper cites for
hardware (Sec. V-D, Bernstein's hash127): since ``2^127 ≡ 1 (mod q)``,
the high part of any intermediate is folded back by addition —
``v = (v & q) + (v >> 127)`` — never by division.  All outputs are
canonical (in ``[0, q-1]``), bit-identical to the scalar field; the
property tests in ``tests/test_limb_field.py`` pin this against
:class:`PrimeField` and :func:`mersenne_reduce` on random and edge
operands.

Only the paper's default modulus ``q = 2^127 - 1`` is supported;
callers dispatch via :func:`supports_field` and fall back to the scalar
oracle for the small test primes.

Tier dispatch: when :mod:`repro.kernels` resolves a compiled backend
(numba or the C library), :func:`mul`, :func:`fold`, :func:`dot` and
:func:`horner` hand the sweep to it — bit-identical outputs, another
order of magnitude of throughput — and fall back to the NumPy kernels
here for shapes outside the native contract.  Under the ``scalar``
tier policy :func:`supports_field` reports ``False`` so all callers
route to the :class:`PrimeField` oracle.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from .. import kernels as _kernels
from .. import obs
from .prime_field import MERSENNE_127, PrimeField

__all__ = [
    "LIMB_BITS",
    "NUM_LIMBS",
    "supports_field",
    "to_limbs",
    "from_limbs",
    "add",
    "sub",
    "mul",
    "fold",
    "horner",
    "horner_checksum",
    "dot",
    "power_weights",
    "weighted_row_tags",
    "dot_ints",
    "field_dot",
]

#: Limbs are 32 bits wide, held in uint64 lanes so products of two limbs
#: (and small sums of their halves) never overflow the lane.
LIMB_BITS = 32
#: 4 x 32 = 128 bits of storage for 127-bit canonical values.
NUM_LIMBS = 4

_MASK = np.uint64(0xFFFFFFFF)
_TOP_MASK = np.uint64(0x7FFFFFFF)  # high limb of a canonical value (31 bits)
_U1 = np.uint64(1)
_U31 = np.uint64(31)
_U32 = np.uint64(32)

#: q = 2^127 - 1 as limbs.
_Q_LIMBS = np.array(
    [0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0x7FFFFFFF], dtype=np.uint64
)

# Keep the accumulated-columns invariant: every intermediate column value
# stays far below 2^63, so uint64 sums over the batch axis are exact as
# long as batches stay under _MAX_SUM_TERMS items.
_MAX_SUM_TERMS = 1 << 28


def supports_field(field: PrimeField) -> bool:
    """True when ``field`` is the paper's default GF(2^127 - 1).

    The ``scalar`` kernel tier forces this to ``False`` so every
    dispatch site (checksums, verification dots, batched SLS) routes to
    the bit-exact :class:`PrimeField` oracle — the audit path.
    """
    if _kernels.active_tier() == "scalar":
        return False
    return field.modulus == MERSENNE_127


# ---------------------------------------------------------------------------
# Conversion (boundary code: Python ints <-> limb arrays).
# ---------------------------------------------------------------------------


def to_limbs(values: Iterable[int] | int) -> np.ndarray:
    """Decompose integers into canonical ``(..., 4)`` limb arrays.

    Accepts a single int or an iterable; arbitrary non-negative or
    negative inputs are reduced into ``[0, q-1]`` first (scalar
    reduction — conversion is boundary code, the hot loops stay in limb
    space).
    """
    scalar = isinstance(values, (int, np.integer))
    vals = [int(values)] if scalar else [int(v) for v in values]
    out = np.zeros((len(vals), NUM_LIMBS), dtype=np.uint64)
    for row, v in enumerate(vals):
        if not 0 <= v < MERSENNE_127:
            v %= MERSENNE_127
        out[row, 0] = v & 0xFFFFFFFF
        out[row, 1] = (v >> 32) & 0xFFFFFFFF
        out[row, 2] = (v >> 64) & 0xFFFFFFFF
        out[row, 3] = v >> 96
    return out[0] if scalar else out


def from_limbs(limbs: np.ndarray) -> List[int] | int:
    """Inverse of :func:`to_limbs`; returns int(s) in ``[0, q-1]``."""
    arr = np.asarray(limbs, dtype=np.uint64)
    scalar = arr.ndim == 1
    arr = arr.reshape(-1, NUM_LIMBS)
    # One C-level int.from_bytes per element beats per-limb shift/or chains.
    buf = arr.astype("<u4").tobytes()
    out = [
        int.from_bytes(buf[16 * i : 16 * i + 16], "little")
        for i in range(arr.shape[0])
    ]
    return out[0] if scalar else out


# ---------------------------------------------------------------------------
# Reduction: shift-add Mersenne folding on limb columns.
# ---------------------------------------------------------------------------


def _carry_normalize(cols: np.ndarray) -> np.ndarray:
    """Propagate carries so every limb is < 2^32.

    ``cols`` holds accumulated column values (limb ``k`` weighted by
    ``2^(32k)``), each far below 2^63, so a single left-to-right pass
    with two extra output limbs absorbs all carries exactly.
    """
    k_in = cols.shape[-1]
    out = np.zeros(cols.shape[:-1] + (k_in + 2,), dtype=np.uint64)
    carry = np.zeros(cols.shape[:-1], dtype=np.uint64)
    for k in range(k_in):
        t = cols[..., k] + carry
        out[..., k] = t & _MASK
        carry = t >> _U32
    out[..., k_in] = carry & _MASK
    out[..., k_in + 1] = carry >> _U32
    return out


def _fold_once(limbs: np.ndarray) -> np.ndarray:
    """One shift-add fold: ``v -> (v & q) + (v >> 127)`` on 32-bit limbs.

    Input must be carry-normalized.  Output is carry-normalized with
    ``max(4, K-3) + 2`` limbs; repeated application converges to a value
    ``<= q`` because each fold removes ~127 bits.
    """
    k_in = limbs.shape[-1]
    lo = np.zeros(limbs.shape[:-1] + (NUM_LIMBS,), dtype=np.uint64)
    lo[..., : min(k_in, NUM_LIMBS)] = limbs[..., : min(k_in, NUM_LIMBS)]
    if k_in >= NUM_LIMBS:
        lo[..., 3] &= _TOP_MASK
    n_hi = max(k_in - 3, 1)
    width = max(NUM_LIMBS, n_hi)
    cols = np.zeros(limbs.shape[:-1] + (width,), dtype=np.uint64)
    cols[..., :NUM_LIMBS] += lo
    # hi limb k = bits [127 + 32k, 127 + 32(k+1)) of the input.
    for k in range(n_hi):
        hi_k = np.zeros(limbs.shape[:-1], dtype=np.uint64)
        if 3 + k < k_in:
            hi_k |= limbs[..., 3 + k] >> _U31
        if 4 + k < k_in:
            hi_k |= (limbs[..., 4 + k] << _U1) & _MASK
        cols[..., k] += hi_k
    return _carry_normalize(cols)


def _canonicalize(limbs: np.ndarray) -> np.ndarray:
    """Fold until 127 bits, then map the fixed point ``q`` to 0."""
    while limbs.shape[-1] > NUM_LIMBS:
        if not np.any(limbs[..., NUM_LIMBS:]):
            limbs = limbs[..., :NUM_LIMBS]
            break
        limbs = _fold_once(limbs)
    while np.any(limbs[..., 3] > _TOP_MASK):
        limbs = _fold_once(limbs)[..., :NUM_LIMBS]
    # v == q is a fixed point of the fold; canonical form is 0.
    is_q = (
        (limbs[..., 0] == _MASK)
        & (limbs[..., 1] == _MASK)
        & (limbs[..., 2] == _MASK)
        & (limbs[..., 3] == _TOP_MASK)
    )
    if np.any(is_q):
        limbs = limbs.copy()
        limbs[is_q] = 0
    return np.ascontiguousarray(limbs)


def _reduce_columns(cols: np.ndarray) -> np.ndarray:
    """Carry-normalize accumulated columns, then fold to canonical form."""
    return _canonicalize(_carry_normalize(cols))


def fold(values: np.ndarray) -> np.ndarray:
    """Public entry: reduce unnormalized limb columns to canonical limbs.

    ``values`` is any ``(..., K)`` uint64 array whose semantic value is
    ``sum_k values[k] * 2^(32k)`` with every column below 2^63.  Mirrors
    :func:`~repro.crypto.prime_field.mersenne_reduce` for bits=127.
    """
    arr = np.asarray(values, dtype=np.uint64)
    nat = _kernels.active_native()
    if nat is not None:
        out = nat.fold(arr)
        if out is not None:
            return out
    return _reduce_columns(arr)


# ---------------------------------------------------------------------------
# Field operations on canonical limb arrays.
# ---------------------------------------------------------------------------


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a + b mod q``, elementwise over broadcastable limb arrays."""
    return _reduce_columns(
        np.asarray(a, dtype=np.uint64) + np.asarray(b, dtype=np.uint64)
    )


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a - b mod q``.

    Canonical ``b`` never exceeds ``q`` limb-wise, so ``q - b`` is
    borrow-free and the subtraction becomes ``a + (q - b)``.
    """
    comp = _Q_LIMBS - np.asarray(b, dtype=np.uint64)
    return _reduce_columns(np.asarray(a, dtype=np.uint64) + comp)


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a * b mod q`` via 4x4 schoolbook limb products.

    Each 32x32-bit partial product is split into its 64-bit low/high
    halves; a product column accumulates at most 8 half-terms, staying
    below 2^35 — comfortably inside the uint64 lanes.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    nat = _kernels.active_native()
    if nat is not None:
        out = nat.mul(a, b)
        if out is not None:
            return out
    shape = np.broadcast_shapes(a.shape[:-1], b.shape[:-1])
    cols = np.zeros(shape + (2 * NUM_LIMBS,), dtype=np.uint64)
    for i in range(NUM_LIMBS):
        for j in range(NUM_LIMBS):
            p = a[..., i] * b[..., j]
            cols[..., i + j] += p & _MASK
            cols[..., i + j + 1] += p >> _U32
    return _reduce_columns(cols)


# ---------------------------------------------------------------------------
# Checksum / dot kernels (the protocol hot paths).
# ---------------------------------------------------------------------------


def _coeff_halves(coeffs: np.ndarray) -> tuple:
    """Split ring residues (< 2^64) into 32-bit low/high halves."""
    c = np.asarray(coeffs, dtype=np.uint64)
    return c & _MASK, c >> _U32


def horner(matrix: np.ndarray, s_limbs: np.ndarray) -> np.ndarray:
    """Row-wise Horner evaluation ``sum_j M[i, j] * s^(m-1-j) mod q``.

    One vectorized mul-add per column, all rows advancing in lockstep —
    the limb-space mirror of :meth:`PrimeField.checksum_poly`.  ``matrix``
    holds ring residues (< 2^64) as uint64; returns ``(n, 4)`` limbs.
    """
    nat = _kernels.active_native()
    if nat is not None:
        out = nat.horner(np.asarray(matrix, dtype=np.uint64), s_limbs)
        if out is not None:
            return out
    m_lo, m_hi = _coeff_halves(matrix)
    n = m_lo.shape[0]
    acc = np.zeros((n, NUM_LIMBS), dtype=np.uint64)
    for j in range(m_lo.shape[1]):
        cols = np.zeros((n, 2 * NUM_LIMBS), dtype=np.uint64)
        for i in range(NUM_LIMBS):
            for k in range(NUM_LIMBS):
                p = acc[..., i] * s_limbs[..., k]
                cols[..., i + k] += p & _MASK
                cols[..., i + k + 1] += p >> _U32
        cols[..., 0] += m_lo[:, j]
        cols[..., 1] += m_hi[:, j]
        acc = _reduce_columns(cols)
    return acc


def horner_checksum(matrix: np.ndarray, s: int) -> np.ndarray:
    """Alg. 2 row tags ``sum_j M[i, j] * s^(m-j)``: Horner, then one mul by s."""
    s_limbs = to_limbs(s)
    return mul(horner(matrix, s_limbs), s_limbs)


def power_weights(field: PrimeField, s: int, m: int) -> np.ndarray:
    """Limb array of ``[s^m, s^(m-1), ..., s^1]`` — Alg. 2 column weights.

    The ``m`` scalar multiplications here are a one-off per (matrix, key)
    and amortize over all ``n`` rows of the vectorized tag sweep.
    """
    powers = [0] * m
    acc = 1
    for e in range(1, m + 1):
        acc = field.mul(acc, s)
        powers[m - e] = acc
    return to_limbs(powers)


def _dot_columns(coeffs: np.ndarray, weight_limbs: np.ndarray) -> np.ndarray:
    """Accumulated product columns of ``sum_j coeffs[..., j] * W[j]``.

    ``coeffs``: ``(..., m)`` uint64 ring residues; ``weight_limbs``:
    ``(m, 4)`` canonical limbs.  Returns unreduced ``(..., 7)`` columns.
    Each of the 8 partial-product half-terms is summed over ``m`` in
    uint64; with halves < 2^32 the column totals stay below ``m * 2^34``.
    """
    c = np.asarray(coeffs, dtype=np.uint64)
    m = weight_limbs.shape[0]
    if m != c.shape[-1]:
        raise ValueError("coefficient and weight lengths differ")
    if m >= _MAX_SUM_TERMS:
        raise ValueError("dot length too large for exact uint64 accumulation")
    cols = np.zeros(c.shape[:-1] + (2 * NUM_LIMBS - 1,), dtype=np.uint64)
    c_max = int(c.max()) if c.size else 0
    if c_max * m < (1 << 31):
        # Small residues (e.g. 8-bit quantized tables): each product
        # coeff * limb is < 2^63 / m, so whole products sum exactly
        # without splitting into halves — 4 kernels instead of 16.
        obs.inc("limb.dot.tier1")
        for k in range(NUM_LIMBS):
            cols[..., k] += (c * weight_limbs[:, k]).sum(axis=-1)
        return cols
    c_lo, c_hi = _coeff_halves(c)
    small = c_max < (1 << 32)  # high halves all zero: skip that sweep
    obs.inc("limb.dot.tier2" if small else "limb.dot.tier3")
    for k in range(NUM_LIMBS):
        wk = weight_limbs[:, k]
        p = c_lo * wk
        cols[..., k] += (p & _MASK).sum(axis=-1)
        cols[..., k + 1] += (p >> _U32).sum(axis=-1)
        if not small:
            p = c_hi * wk
            cols[..., k + 1] += (p & _MASK).sum(axis=-1)
            cols[..., k + 2] += (p >> _U32).sum(axis=-1)
    return cols


def dot(coeffs: np.ndarray, weight_limbs: np.ndarray) -> np.ndarray:
    """``sum_j coeffs[..., j] * W[j] mod q`` -> canonical ``(..., 4)`` limbs.

    This is the protocol's universal kernel: row tags are dots against
    the power weights, and the Alg. 5 tag-side sums (``a x C_T``,
    ``a x E_T``) are dots of ring weights against tag vectors.
    """
    nat = _kernels.active_native()
    if nat is not None:
        c = np.asarray(coeffs, dtype=np.uint64)
        m = weight_limbs.shape[0]
        if m != c.shape[-1]:
            raise ValueError("coefficient and weight lengths differ")
        if m >= _MAX_SUM_TERMS:
            raise ValueError("dot length too large for exact uint64 accumulation")
        out = nat.dot(c, weight_limbs)
        if out is not None:
            obs.inc("limb.dot.native")
            return out
    return _reduce_columns(_dot_columns(coeffs, weight_limbs))


def weighted_row_tags(
    matrix: np.ndarray, weight_limbs: np.ndarray, row_chunk: int = 0
) -> List[int]:
    """All row tags ``sum_j M[i, j] * W[j] mod q`` in one vectorized sweep.

    ``matrix`` is ``(n, m)`` non-negative residues (any integer dtype
    < 2^64); chunking bounds the temporary product arrays to a few
    megabytes regardless of ``n * m``.
    """
    matrix = np.asarray(matrix)
    n, m = matrix.shape
    if row_chunk <= 0:
        # ~ (1 << 21) uint64 temporaries (16 MiB) per kernel invocation.
        row_chunk = max(1, (1 << 21) // max(m, 1))
    tags: List[int] = []
    for start in range(0, n, row_chunk):
        limbs = dot(matrix[start : start + row_chunk], weight_limbs)
        chunk = from_limbs(limbs)
        tags.extend(chunk if isinstance(chunk, list) else [chunk])
    return tags


def dot_ints(weights: Sequence[int], values: Sequence[int]) -> int:
    """Scalar-in/scalar-out vectorized dot ``sum_k w_k * v_k mod q``.

    ``weights`` must be ring residues (< 2^64, the protocol invariant for
    ``a``); ``values`` may be any field elements.  Used by the Alg. 5
    verification dots in place of the interpreted ``PrimeField.dot``.
    """
    if len(weights) != len(values):
        raise ValueError("weights and values must have equal length")
    if not weights:
        return 0
    w = np.asarray([int(w) for w in weights], dtype=np.uint64)
    v_limbs = to_limbs(values)
    # dot() contracts the last axis of the coefficient array with the
    # weight rows; here the "coefficients" are the ring weights.
    return int(from_limbs(dot(w[None, :], v_limbs))[0])


def field_dot(field: PrimeField, weights: Sequence[int], values: Sequence[int]) -> int:
    """Dispatching dot: limb-vectorized for GF(2^127 - 1), scalar otherwise.

    Falls back to the :class:`PrimeField` oracle when the modulus is not
    the paper's Mersenne prime (the small test primes) or when a weight
    falls outside the uint64 ring-residue range the kernel assumes.
    """
    ws = [int(w) for w in weights]
    if (
        supports_field(field)
        and ws
        and min(ws) >= 0
        and max(ws) < (1 << 64)
    ):
        return dot_ints(ws, list(values))
    obs.inc("limb.dot.fallback_scalar")
    return field.dot(ws, [int(v) for v in values])
