"""Arithmetic modulo the Mersenne prime q = 2^127 - 1.

SecNDP's verification tags live in the prime field ``GF(q)`` with
``q = 2^127 - 1`` (paper Sec. IV-F): the linear checksum of Alg. 2, its
encryption in Alg. 3, and all tag computation on both the NDP and OTP
sides (Alg. 5) are performed mod ``q``.  The paper picks a Mersenne prime
because reduction is a shift-add (Sec. V-D, citing Bernstein's hash127).

Python integers are arbitrary precision, so scalar field arithmetic is
exact out of the box; this module adds explicit Mersenne reduction (to
model/validate the hardware trick), Horner checksum evaluation, and small
vector helpers used by the protocol code.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "MERSENNE_127",
    "mersenne_reduce",
    "PrimeField",
    "F127",
]

#: The paper's default tag modulus, the Mersenne prime 2^127 - 1.
MERSENNE_127 = (1 << 127) - 1


def mersenne_reduce(value: int, bits: int = 127) -> int:
    """Reduce ``value`` modulo ``2^bits - 1`` using only shifts and adds.

    This mirrors the hardware-friendly reduction the paper alludes to
    (Sec. V-D): because ``2^bits ≡ 1 (mod 2^bits - 1)``, the high part of a
    product can be folded back by addition.  Works for any non-negative
    value; negative inputs are handled by reducing the absolute value and
    negating in the field.
    """
    modulus = (1 << bits) - 1
    if value < 0:
        reduced = mersenne_reduce(-value, bits)
        return 0 if reduced == 0 else modulus - reduced
    # Fold until at most `bits` wide.  The loop condition must be strict:
    # an all-ones value equal to the modulus is a fixed point of the fold
    # (mask keeps it, shift yields 0), so `>=` would never terminate.
    while value > modulus:
        value = (value & modulus) + (value >> bits)
    return 0 if value == modulus else value


class PrimeField:
    """The field GF(q) for a prime modulus q (default 2^127 - 1).

    A thin, explicit wrapper over Python integer arithmetic; exists so the
    tag modulus is a first-class, swappable object (the tests exercise
    smaller primes to make forgery probabilities observable).
    """

    def __init__(self, modulus: int = MERSENNE_127):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.modulus = modulus
        # True when modulus == 2^k - 1, enabling the shift-add reduction.
        k = modulus.bit_length()
        self._mersenne_bits = k if (1 << k) - 1 == modulus else None

    def reduce(self, value: int) -> int:
        if self._mersenne_bits is not None:
            return mersenne_reduce(value, self._mersenne_bits)
        return value % self.modulus

    def add(self, a: int, b: int) -> int:
        return self.reduce(a + b)

    def sub(self, a: int, b: int) -> int:
        return self.reduce(a - b)

    def mul(self, a: int, b: int) -> int:
        return self.reduce(a * b)

    def neg(self, a: int) -> int:
        return self.reduce(-a)

    def pow(self, base: int, exponent: int) -> int:
        return pow(self.reduce(base), exponent, self.modulus)

    def inv(self, a: int) -> int:
        """Multiplicative inverse (Fermat); raises on zero."""
        a = self.reduce(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(q)")
        return pow(a, self.modulus - 2, self.modulus)

    def rand(self, rng) -> int:
        """Uniform field element drawn from a ``random.Random``-like rng."""
        return rng.randrange(self.modulus)

    # -- checksum helpers ----------------------------------------------------

    def checksum(self, row: Sequence[int], s: int) -> int:
        """Linear Modular Hash of Alg. 2: ``sum_j row[j] * s^(m-j) mod q``.

        With ``m = len(row)`` the exponents run ``m, m-1, ..., 1`` — i.e.
        Horner evaluation of the polynomial whose coefficients are the row
        elements, multiplied once more by ``s`` (so the constant term is 0,
        making the empty row hash to 0).
        """
        acc = 0
        for coeff in row:
            acc = self.reduce(acc * s + coeff)
        return self.mul(acc, s)

    def checksum_poly(self, row: Sequence[int], s: int) -> int:
        """Variant with exponents ``m-1, ..., 0`` (``sum row[j] * s^(m-1-j)``).

        Alg. 5 line 10 writes the reconstruction as ``sum res_j * s^j``;
        both orderings verify identically as long as sign and verify agree.
        Provided for the Alg. 8 tests and cross-checks.
        """
        acc = 0
        for coeff in row:
            acc = self.reduce(acc * s + coeff)
        return acc

    def dot(self, weights: Sequence[int], values: Sequence[int]) -> int:
        """Weighted sum ``sum_k weights[k] * values[k] mod q``.

        This is the tag-side NDP/OTP operation (``a × C_T`` and
        ``a × E_T`` in Alg. 5).
        """
        if len(weights) != len(values):
            raise ValueError("weights and values must have equal length")
        acc = 0
        for w, v in zip(weights, values):
            acc += w * v
        return self.reduce(acc)


#: Shared instance of the paper's default field.
F127 = PrimeField(MERSENNE_127)
