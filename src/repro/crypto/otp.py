"""One-time-pad (OTP) generation for SecNDP arithmetic encryption.

Alg. 1 derives the processor's share of the secret by encrypting counter
blocks: plaintext is split into ``w_c``-bit chunks, the chunk's physical
byte address (plus the version) is fed through ``E_00`` and the resulting
128-bit pad is sliced into ``l = w_c / w_e`` ring elements.

This module produces exactly those pad elements, both for whole
matrices (bulk encryption, Alg. 1) and for scattered single elements
(Alg. 4 lines 8-12, where the processor regenerates only the pads of the
elements that participate in a weighted summation).
"""

from __future__ import annotations

import numpy as np

from .aes import BLOCK_BYTES
from .ring import Ring
from .tweaked import DOMAIN_DATA, TweakedCipher

__all__ = ["OtpGenerator"]


class OtpGenerator:
    """Generates data-domain OTP elements from (address, version) pairs.

    Parameters
    ----------
    cipher:
        The shared :class:`~repro.crypto.tweaked.TweakedCipher`.
    ring:
        Element ring ``Z(2^w_e)``; determines how each 128-bit pad block is
        sliced into elements (``l = w_c / w_e`` per block).
    """

    def __init__(self, cipher: TweakedCipher, ring: Ring):
        self.cipher = cipher
        self.ring = ring
        self.elements_per_block = BLOCK_BYTES * 8 // ring.width

    def pad_elements(self, base_addr: int, count: int, version: int) -> np.ndarray:
        """OTP elements covering ``count`` consecutive elements at ``base_addr``.

        ``base_addr`` is a byte address and must be aligned to the cipher
        block size, matching Alg. 1 where chunk ``i`` lives at
        ``Addr + i * (w_c / 8)``.
        """
        if base_addr % BLOCK_BYTES:
            raise ValueError(
                f"base address {base_addr:#x} not aligned to {BLOCK_BYTES}-byte blocks"
            )
        if count < 0:
            raise ValueError("count must be non-negative")
        n_blocks = -(-count // self.elements_per_block)  # ceil division
        addrs = base_addr + BLOCK_BYTES * np.arange(n_blocks, dtype=np.uint64)
        pads = self.cipher.encrypt_counters(DOMAIN_DATA, addrs, version)
        return self.ring.from_bytes(pads)[:count]

    def pad_element_at(self, elem_byte_addr: int, version: int) -> int:
        """The single OTP element covering the element at ``elem_byte_addr``.

        Mirrors Alg. 4 lines 9-11: the block address is the element address
        rounded down to the cipher block, and ``idx`` selects the
        ``w_e``-bit substring inside the pad.
        """
        elem_bytes = self.ring.width // 8
        if elem_byte_addr % elem_bytes:
            raise ValueError(
                f"element address {elem_byte_addr:#x} not aligned to "
                f"{elem_bytes}-byte elements"
            )
        block_addr = (elem_byte_addr // BLOCK_BYTES) * BLOCK_BYTES
        idx = (elem_byte_addr % BLOCK_BYTES) // elem_bytes
        pad = self.cipher.encrypt_counter(DOMAIN_DATA, block_addr, version)
        pad_elems = self.ring.from_bytes(np.frombuffer(pad, dtype=np.uint8))
        return int(pad_elems[idx])

    def pad_elements_at(
        self, elem_byte_addrs: np.ndarray, version: int
    ) -> np.ndarray:
        """Vectorised :meth:`pad_element_at` for scattered element addresses."""
        addrs = np.asarray(elem_byte_addrs, dtype=np.uint64)
        elem_bytes = self.ring.width // 8
        if addrs.size and int(np.max(addrs % elem_bytes)):
            raise ValueError("element addresses must be element-aligned")
        block_addrs = (addrs // BLOCK_BYTES) * BLOCK_BYTES
        idx = ((addrs % BLOCK_BYTES) // elem_bytes).astype(np.intp)
        pads = self.cipher.encrypt_counters(DOMAIN_DATA, block_addrs, version)
        pad_elems = pads.reshape(-1).view(self.ring.dtype).reshape(
            len(addrs), self.elements_per_block
        )
        return pad_elems[np.arange(len(addrs)), idx]
