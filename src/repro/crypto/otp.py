"""One-time-pad (OTP) generation for SecNDP arithmetic encryption.

Alg. 1 derives the processor's share of the secret by encrypting counter
blocks: plaintext is split into ``w_c``-bit chunks, the chunk's physical
byte address (plus the version) is fed through ``E_00`` and the resulting
128-bit pad is sliced into ``l = w_c / w_e`` ring elements.

This module produces exactly those pad elements, both for whole
matrices (bulk encryption, Alg. 1) and for scattered single elements
(Alg. 4 lines 8-12, where the processor regenerates only the pads of the
elements that participate in a weighted summation).

Hot-path note: scattered queries touch many elements that share a cipher
block (``l`` adjacent elements per block), so :meth:`pad_elements_at`
deduplicates block addresses before invoking AES and keeps a small
per-(version, address) LRU of recently generated pad blocks.  Pads are a
pure function of ``(K, version, address)``, so caching is semantically
invisible; repeated SLS queries over hot embedding rows skip the cipher
entirely.

Concurrency note: the hot-row tiering layer (:mod:`repro.tiering`) feeds
this LRU from a background prewarmer thread while the serving thread
reads it.  Every cache operation here is a single C-level
dict/OrderedDict call (atomic under the GIL) and pad rows are immutable
copies, so interleavings can only cost a duplicated AES call or a
slightly-early eviction — never a wrong pad.  The two read-modify-write
spots that could observe a concurrent eviction (``move_to_end`` after a
hit, ``popitem`` while shrinking) tolerate ``KeyError``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple

import numpy as np

from .. import obs
from .aes import BLOCK_BYTES
from .ring import Ring
from .tweaked import DOMAIN_DATA, TweakedCipher

__all__ = [
    "OtpGenerator",
    "OtpCacheInfo",
    "merge_cache_info",
    "publish_cache_gauges",
]


class OtpCacheInfo(NamedTuple):
    """Pad-block LRU statistics (mirrors ``functools.lru_cache.cache_info``)."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int

def merge_cache_info(infos) -> OtpCacheInfo:
    """Aggregate :class:`OtpCacheInfo` tuples from independent generators.

    Each pool worker owns a private pad-block LRU; this sums their
    hit/miss/eviction counters and sizes so a sharded
    ``SecureEmbeddingStore`` can report one fleet-wide ``cache_info()``.
    ``maxsize`` sums too — it is the total pad memory the fleet may pin.
    """
    hits = misses = evictions = currsize = maxsize = 0
    for info in infos:
        hits += info.hits
        misses += info.misses
        evictions += info.evictions
        currsize += info.currsize
        maxsize += info.maxsize
    return OtpCacheInfo(
        hits=hits,
        misses=misses,
        evictions=evictions,
        currsize=currsize,
        maxsize=maxsize,
    )


def publish_cache_gauges(prefix: str, info: OtpCacheInfo) -> None:
    """Export one cache-info tuple as ``{prefix}.*`` gauges.

    Used for the fleet-wide (store + pool workers) views the CLI's
    ``--stats`` output reports: counters live in each process, so the
    merged tuple is published from the parent as point-in-time gauges.
    """
    if not obs.enabled():
        return
    obs.gauge(f"{prefix}.hits", info.hits)
    obs.gauge(f"{prefix}.misses", info.misses)
    obs.gauge(f"{prefix}.evictions", info.evictions)
    obs.gauge(f"{prefix}.currsize", info.currsize)
    obs.gauge(f"{prefix}.maxsize", info.maxsize)
    served = info.hits + info.misses
    if served:
        obs.gauge(f"{prefix}.hit_rate", info.hits / served)


#: Default LRU capacity in cipher blocks (16 B of pad each); at the
#: default 4096 blocks the cache tops out well under 1 MiB.
DEFAULT_CACHE_BLOCKS = 4096


class OtpGenerator:
    """Generates data-domain OTP elements from (address, version) pairs.

    Parameters
    ----------
    cipher:
        The shared :class:`~repro.crypto.tweaked.TweakedCipher`.
    ring:
        Element ring ``Z(2^w_e)``; determines how each 128-bit pad block is
        sliced into elements (``l = w_c / w_e`` per block).
    cache_blocks:
        Capacity of the block-pad LRU (0 disables caching).
    """

    def __init__(
        self, cipher: TweakedCipher, ring: Ring, cache_blocks: int = DEFAULT_CACHE_BLOCKS
    ):
        self.cipher = cipher
        self.ring = ring
        self.elements_per_block = BLOCK_BYTES * 8 // ring.width
        self.cache_blocks = cache_blocks
        self._block_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        #: bytes one cached pad row pins (the ``otp.cache.bytes`` gauge
        #: is ``currsize * entry_bytes``).
        self.entry_bytes = self.elements_per_block * np.dtype(ring.dtype).itemsize
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    # -- block-level pad generation -------------------------------------------

    def _encrypt_blocks(self, block_addrs: np.ndarray, version: int) -> np.ndarray:
        """Pad rows ``(len(block_addrs), l)`` straight from the cipher."""
        pads = self.cipher.encrypt_counters(DOMAIN_DATA, block_addrs, version)
        return self.ring.from_bytes(pads).reshape(
            len(block_addrs), self.elements_per_block
        )

    def _pads_for_blocks(self, block_addrs: np.ndarray, version: int) -> np.ndarray:
        """Like :meth:`_encrypt_blocks` but served through the LRU.

        Callers pass *deduplicated* block addresses; only cache misses
        reach the cipher, in one vectorized sweep.
        """
        if not self.cache_blocks:
            return self._encrypt_blocks(block_addrs, version)
        out = np.empty(
            (len(block_addrs), self.elements_per_block), dtype=self.ring.dtype
        )
        cache = self._block_cache
        missing: list = []
        missing_pos: list = []
        for pos, addr in enumerate(block_addrs.tolist()):
            key = (version, addr)
            row = cache.get(key)
            if row is None:
                missing.append(addr)
                missing_pos.append(pos)
            else:
                try:
                    cache.move_to_end(key)
                except KeyError:
                    # A concurrent prewarmer eviction raced the hit; the
                    # row reference is still valid, only the LRU position
                    # is lost.
                    pass
                out[pos] = row
        hits = len(block_addrs) - len(missing)
        self.cache_hits += hits
        self.cache_misses += len(missing)
        if obs.enabled():
            obs.inc("otp.cache.hit", hits)
            obs.inc("otp.cache.miss", len(missing))
        if missing:
            rows = self._encrypt_blocks(
                np.asarray(missing, dtype=np.uint64), version
            )
            for k, pos in enumerate(missing_pos):
                out[pos] = rows[k]
                cache[(version, missing[k])] = rows[k].copy()
            self._evict_to_capacity()
        return out

    def _evict_to_capacity(self) -> None:
        """Shrink the LRU to ``cache_blocks`` in one accounted pass.

        The excess is computed once and popped in a single sweep (instead
        of re-checking ``len`` and incrementing counters per pop), and the
        resident pad memory is republished so sizing decisions are
        observable via the ``otp.cache.bytes`` gauge.
        """
        cache = self._block_cache
        excess = len(cache) - self.cache_blocks
        if excess > 0:
            for _ in range(excess):
                try:
                    cache.popitem(last=False)
                except KeyError:  # another thread emptied it first
                    break
            self.cache_evictions += excess
            obs.inc("otp.cache.eviction", excess)
        if obs.enabled():
            obs.gauge("otp.cache.bytes", len(cache) * self.entry_bytes)

    def cache_info(self) -> OtpCacheInfo:
        """Current pad-block LRU statistics.

        ``currsize`` is bounded by ``maxsize`` (the constructor's
        ``cache_blocks``); once the workload's distinct-block footprint
        exceeds the capacity, ``evictions`` starts counting and memory
        stays flat.
        """
        return OtpCacheInfo(
            hits=self.cache_hits,
            misses=self.cache_misses,
            evictions=self.cache_evictions,
            currsize=len(self._block_cache),
            maxsize=self.cache_blocks,
        )

    def clear_cache(self) -> None:
        self._block_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def resize_cache(self, cache_blocks: int) -> None:
        """Change the LRU capacity in place (skew-aware sizing hook).

        Growing keeps every resident pad; shrinking evicts the coldest
        entries down to the new capacity.  ``0`` disables caching and
        drops everything.
        """
        if cache_blocks < 0:
            raise ValueError("cache_blocks must be non-negative")
        self.cache_blocks = cache_blocks
        if cache_blocks == 0:
            self._block_cache.clear()
        else:
            self._evict_to_capacity()
        if obs.enabled():
            obs.gauge("otp.cache.capacity_blocks", cache_blocks)
            obs.gauge("otp.cache.bytes", len(self._block_cache) * self.entry_bytes)

    def purge_version(self, version: int) -> int:
        """Drop every cached pad generated under ``version``.

        Called by the tiering layer when a region is re-encrypted under a
        bumped version: pads are keyed by ``(version, address)``, so stale
        entries can never be *served* for the new version, but they would
        squat in the capacity until natural eviction.  Returns the number
        of entries dropped.
        """
        stale = [key for key in list(self._block_cache) if key[0] == version]
        dropped = 0
        for key in stale:
            try:
                del self._block_cache[key]
            except KeyError:
                continue
            dropped += 1
        if dropped and obs.enabled():
            obs.inc("otp.cache.purged", dropped)
            obs.gauge("otp.cache.bytes", len(self._block_cache) * self.entry_bytes)
        return dropped

    # -- element-level pad generation -----------------------------------------

    def pad_elements(self, base_addr: int, count: int, version: int) -> np.ndarray:
        """OTP elements covering ``count`` consecutive elements at ``base_addr``.

        ``base_addr`` is a byte address and must be aligned to the cipher
        block size, matching Alg. 1 where chunk ``i`` lives at
        ``Addr + i * (w_c / 8)``.  Bulk generation bypasses the LRU: the
        addresses are distinct by construction and a whole-matrix sweep
        would only evict the hot query blocks.
        """
        if base_addr % BLOCK_BYTES:
            raise ValueError(
                f"base address {base_addr:#x} not aligned to {BLOCK_BYTES}-byte blocks"
            )
        if count < 0:
            raise ValueError("count must be non-negative")
        n_blocks = -(-count // self.elements_per_block)  # ceil division
        addrs = base_addr + BLOCK_BYTES * np.arange(n_blocks, dtype=np.uint64)
        pads = self.cipher.encrypt_counters(DOMAIN_DATA, addrs, version)
        return self.ring.from_bytes(pads)[:count]

    def pad_element_at(self, elem_byte_addr: int, version: int) -> int:
        """The single OTP element covering the element at ``elem_byte_addr``.

        Mirrors Alg. 4 lines 9-11: the block address is the element address
        rounded down to the cipher block, and ``idx`` selects the
        ``w_e``-bit substring inside the pad.
        """
        elem_bytes = self.ring.width // 8
        if elem_byte_addr % elem_bytes:
            raise ValueError(
                f"element address {elem_byte_addr:#x} not aligned to "
                f"{elem_bytes}-byte elements"
            )
        block_addr = (elem_byte_addr // BLOCK_BYTES) * BLOCK_BYTES
        idx = (elem_byte_addr % BLOCK_BYTES) // elem_bytes
        row = self._pads_for_blocks(
            np.asarray([block_addr], dtype=np.uint64), version
        )[0]
        return int(row[idx])

    def pad_elements_at(
        self, elem_byte_addrs: np.ndarray, version: int
    ) -> np.ndarray:
        """Vectorised :meth:`pad_element_at` for scattered element addresses.

        Adjacent elements share cipher blocks (``l`` per block), so the
        block addresses are deduplicated before encryption: a pooled SLS
        query over contiguous rows pays one AES call per *block* touched,
        not one per element, and hot blocks come from the LRU for free.
        """
        addrs = np.asarray(elem_byte_addrs, dtype=np.uint64)
        elem_bytes = self.ring.width // 8
        if addrs.size and int(np.max(addrs % elem_bytes)):
            raise ValueError("element addresses must be element-aligned")
        if addrs.size == 0:
            return np.empty(0, dtype=self.ring.dtype)
        block_addrs = (addrs // BLOCK_BYTES) * BLOCK_BYTES
        idx = ((addrs % BLOCK_BYTES) // elem_bytes).astype(np.intp)
        unique_blocks, inverse = np.unique(block_addrs, return_inverse=True)
        if obs.enabled():
            obs.inc("otp.elements", int(addrs.size))
            obs.inc("otp.dedupe.saved_blocks", int(addrs.size - unique_blocks.size))
        pad_rows = self._pads_for_blocks(unique_blocks, version)
        return pad_rows[inverse, idx]
