"""Domain-separated, version-tweaked encryption systems E_00 / E_01 / E_10.

Paper Definition A.2 defines three randomized encryption systems derived
from one block cipher::

    E_00(K, A, v) = E(K, 00 || A || v || 0...)   # data OTPs        (Alg. 1)
    E_01(K, A, v) = E(K, 01 || A || v || 0...)   # checksum secret s (Alg. 2)
    E_10(K, A, v) = E(K, 10 || A || v || 0...)   # tag OTPs          (Alg. 3)

The two leading *domain* bits guarantee that the same (address, version)
pair never produces the same pad for two different purposes.  The version
``v`` is the anti-reuse tweak: counter-mode security requires that no two
encryptions of different plaintexts at the same address share a version
(Sec. III-B).

This module owns the exact bit layout of the 128-bit counter block so that
every other part of the system (encryption, MAC, the hardware-engine
models, and the security-game oracles) derives pads identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .aes import AES128, BLOCK_BYTES, aes128_encrypt_blocks

__all__ = [
    "DOMAIN_DATA",
    "DOMAIN_CHECKSUM",
    "DOMAIN_TAG",
    "CounterBlockLayout",
    "TweakedCipher",
]

#: Domain prefix for data OTPs (Alg. 1, ``'00'``).
DOMAIN_DATA = 0b00
#: Domain prefix for the linear-checksum secret ``s`` (Alg. 2, ``'01'``).
DOMAIN_CHECKSUM = 0b01
#: Domain prefix for verification-tag OTPs (Alg. 3, ``'10'``).
DOMAIN_TAG = 0b10

_VALID_DOMAINS = (DOMAIN_DATA, DOMAIN_CHECKSUM, DOMAIN_TAG)

_BLOCK_BITS = 8 * BLOCK_BYTES


@dataclass(frozen=True)
class CounterBlockLayout:
    """Bit layout of the counter block ``D || A || v || 0-padding``.

    The paper (Table VI) uses a 38-bit physical address and requires
    ``w_v <= w_c - w_A - 2``.  The defaults here follow that: 2 domain
    bits + 38 address bits + 64 version bits + 24 zero-pad bits = 128.
    """

    addr_bits: int = 38
    version_bits: int = 64

    def __post_init__(self) -> None:
        if 2 + self.addr_bits + self.version_bits > _BLOCK_BITS:
            raise ValueError(
                "counter block overflow: 2 + addr_bits + version_bits must be "
                f"<= {_BLOCK_BITS}, got {2 + self.addr_bits + self.version_bits}"
            )
        if self.addr_bits <= 0 or self.version_bits <= 0:
            raise ValueError("addr_bits and version_bits must be positive")

    @property
    def pad_bits(self) -> int:
        return _BLOCK_BITS - 2 - self.addr_bits - self.version_bits

    def pack(self, domain: int, addr: int, version: int) -> bytes:
        """Pack (domain, address, version) into a 16-byte counter block."""
        if domain not in _VALID_DOMAINS:
            raise ValueError(f"invalid domain bits {domain:#04b}")
        if not 0 <= addr < (1 << self.addr_bits):
            raise ValueError(
                f"address {addr:#x} does not fit in {self.addr_bits} bits"
            )
        if not 0 <= version < (1 << self.version_bits):
            raise ValueError(
                f"version {version} does not fit in {self.version_bits} bits"
            )
        value = (
            (domain << (_BLOCK_BITS - 2))
            | (addr << (_BLOCK_BITS - 2 - self.addr_bits))
            | (version << self.pad_bits)
        )
        return value.to_bytes(BLOCK_BYTES, "big")

    def pack_many(
        self, domain: int, addrs: np.ndarray, version: int
    ) -> np.ndarray:
        """Vectorised :meth:`pack` for an array of addresses.

        Returns a ``uint8`` array of shape ``(len(addrs), 16)``.
        """
        addrs = np.asarray(addrs, dtype=np.uint64)
        if domain not in _VALID_DOMAINS:
            raise ValueError(f"invalid domain bits {domain:#04b}")
        if addrs.size and int(addrs.max()) >= (1 << self.addr_bits):
            raise ValueError("address does not fit in layout")
        if not 0 <= version < (1 << self.version_bits):
            raise ValueError("version does not fit in layout")

        # Assemble the 128-bit block as two 64-bit halves (big-endian):
        # hi covers bits [127..64], lo covers bits [63..0].
        hi = np.zeros(addrs.size, dtype=np.uint64)
        lo = np.zeros(addrs.size, dtype=np.uint64)

        def _or_field(values: np.ndarray, shift: int) -> None:
            """OR a <=64-bit field placed at bit offset ``shift`` from the
            block LSB into the hi/lo halves.  Fields in this layout never
            straddle the half boundary *upward* beyond 64 bits of width, so
            splitting into a low part (<<) and carry part (>>) suffices."""
            nonlocal hi, lo
            if shift >= 64:
                hi |= values << np.uint64(shift - 64)
            else:
                lo |= values << np.uint64(shift)
                if shift > 0:
                    hi |= values >> np.uint64(64 - shift)

        _or_field(np.full(addrs.size, domain, dtype=np.uint64), _BLOCK_BITS - 2)
        _or_field(addrs, _BLOCK_BITS - 2 - self.addr_bits)
        _or_field(np.full(addrs.size, version, dtype=np.uint64), self.pad_bits)

        blocks = np.zeros((addrs.size, BLOCK_BYTES), dtype=np.uint8)
        blocks[:, :8] = hi[:, None].view(np.uint8).reshape(-1, 8)[:, ::-1]
        blocks[:, 8:] = lo[:, None].view(np.uint8).reshape(-1, 8)[:, ::-1]
        return blocks


class TweakedCipher:
    """The three tweaked systems of Definition A.2 behind one key.

    Wraps a single AES-128 key and exposes pad generation for each domain.
    All SecNDP components (Alg. 1/2/3 and the architectural engine models)
    share one instance so pads line up across the processor and the
    verification path.
    """

    def __init__(self, key: bytes, layout: CounterBlockLayout | None = None):
        self._key = bytes(key)
        self._aes = AES128(self._key)
        self.layout = layout or CounterBlockLayout()

    @property
    def key(self) -> bytes:
        return self._key

    def encrypt_counter(self, domain: int, addr: int, version: int) -> bytes:
        """Return the 16-byte pad ``E(K, D || addr || v || 0..)``."""
        return self._aes.encrypt_block(self.layout.pack(domain, addr, version))

    def encrypt_counter_int(self, domain: int, addr: int, version: int) -> int:
        """Like :meth:`encrypt_counter` but as a 128-bit big-endian integer."""
        return int.from_bytes(self.encrypt_counter(domain, addr, version), "big")

    def encrypt_counters(
        self, domain: int, addrs: Sequence[int] | np.ndarray, version: int
    ) -> np.ndarray:
        """Vectorised pad generation: one 16-byte pad row per address."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        blocks = self.layout.pack_many(domain, addrs, version)
        return aes128_encrypt_blocks(self._key, blocks)
