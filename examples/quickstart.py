#!/usr/bin/env python
"""SecNDP quickstart: encrypt a table, offload pooling, verify the result.

Walks the full T0/T1 flow of the paper's Figure 4:

1. the trusted processor arithmetically encrypts a matrix (Alg. 1) and
   attaches encrypted verification tags (Alg. 2+3);
2. the ciphertext is stored on the untrusted NDP device;
3. a weighted row summation is computed jointly - the device works on
   ciphertext, the processor on regenerated one-time pads (Alg. 4);
4. the result is decrypted with a single ring addition and verified
   against the tag reconstruction (Alg. 5);
5. a tampering device is caught red-handed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import VerificationError


def main() -> None:
    # -- setup: one trusted processor, one untrusted NDP device -------------
    params = SecNDPParams(element_bits=32)  # Z(2^32) elements, q = 2^127 - 1
    processor = SecNDPProcessor(key=b"0123456789abcdef", params=params)
    device = UntrustedNdpDevice(params)

    # -- T0: encrypt private data and ship ciphertext to memory -------------
    rng = np.random.default_rng(7)
    table = rng.integers(0, 1000, size=(128, 32)).astype(np.uint32)
    encrypted = processor.encrypt_matrix(
        table, base_addr=0x1_0000, region="user-embeddings", with_tags=True
    )
    device.store("user-embeddings", encrypted)
    print(f"encrypted {table.shape} matrix -> {encrypted.n_rows} tagged rows")
    assert not np.array_equal(encrypted.ciphertext, table)

    # -- T1: offload a weighted summation ------------------------------------
    rows = [3, 17, 42, 99]
    weights = [1, 2, 3, 1]
    result = processor.weighted_row_sum(
        device, "user-embeddings", rows, weights, verify=True
    )
    expected = (np.array(weights)[:, None] * table[rows].astype(np.int64)).sum(
        axis=0
    )
    assert np.array_equal(result.values.astype(np.int64), expected)
    print(f"verified weighted sum over rows {rows}: first elems "
          f"{result.values[:4].tolist()}")

    # -- the device goes rogue ------------------------------------------------
    device.tamper_results(delta=1)  # add 1 to every result it returns
    try:
        processor.weighted_row_sum(device, "user-embeddings", rows, weights)
        raise SystemExit("tampering was NOT detected - this must not happen")
    except VerificationError as exc:
        print(f"tampering detected as designed: {type(exc).__name__}")
    device.behave_honestly()

    # -- overflow detection (paper footnote 1) --------------------------------
    big = np.full((4, 32), (1 << 31) + 5, dtype=np.uint32)
    enc_big = processor.encrypt_matrix(big, 0x8_0000, "big", with_tags=True)
    device.store("big", enc_big)
    try:
        processor.weighted_row_sum(device, "big", [0, 1, 2, 3], [1, 1, 1, 1])
        raise SystemExit("overflow was NOT detected - this must not happen")
    except VerificationError:
        print("ring overflow detected by the verification tag, as proven in "
              "Thm. A.2")

    print("quickstart OK")


if __name__ == "__main__":
    main()
