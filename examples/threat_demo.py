#!/usr/bin/env python
"""Threat-model tour: every attack of paper Sec. II against SecNDP.

Demonstrates, one by one, that the attacks the threat model grants the
adversary are either information-free (confidentiality) or detected
(integrity):

1. reading ciphertext from memory (cold-boot) reveals a uniform-looking
   stream - we measure its byte histogram;
2. version reuse, the one discipline violation that *does* leak, is shown
   leaking - and the software VersionManager refuses to let it happen;
3. a malicious NDP PU returning wrong sums is caught;
4. memory tampering (bit flips in stored ciphertext) is caught;
5. a replayed stale tag is caught;
6. a forged tag succeeds only with probability ~m/q (demonstrated with a
   deliberately tiny prime so the bound is measurable).

Run:  python examples/threat_demo.py
"""

import numpy as np

from repro.core import (
    SecNDPParams,
    SecNDPProcessor,
    UntrustedNdpDevice,
    VersionManager,
    WeightedSummationOracles,
)
from repro.errors import VerificationError, VersionReuseError


def check(name: str, attack_detected: bool) -> None:
    status = "DETECTED" if attack_detected else "!! MISSED !!"
    print(f"  [{status:>12s}] {name}")
    assert attack_detected


def main() -> None:
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(key=b"tee-master-key-0", params=params)
    device = UntrustedNdpDevice(params)

    secret = np.full((32, 16), 42, dtype=np.uint32)  # very non-random secret
    enc = processor.encrypt_matrix(secret, 0x1000, "secret", with_tags=True)
    device.store("secret", enc)

    # 1 -- cold-boot read of ciphertext ------------------------------------------
    ct_bytes = enc.ciphertext.reshape(-1).view(np.uint8)
    counts = np.bincount(ct_bytes, minlength=256)
    spread = counts.max() / max(counts.mean(), 1)
    print(f"1. cold-boot dump: constant plaintext encrypts to ~uniform bytes "
          f"(max/mean bucket ratio {spread:.2f})")
    assert spread < 3.0

    # 2 -- version reuse leak + manager refusal ----------------------------------
    p1 = np.full((4, 4), 100, dtype=np.uint32)
    p2 = np.full((4, 4), 175, dtype=np.uint32)
    c1 = processor.encryptor.encrypt(p1, 0x9000, version=1).ciphertext
    c2 = processor.encryptor.encrypt(p2, 0x9000, version=1).ciphertext
    leak = int((c2.astype(np.int64) - c1) [0, 0] % (1 << 32))
    print(f"2. version REUSE leaks the plaintext delta: c2 - c1 = {leak} "
          f"(true delta 75) - which is why the VersionManager forbids it:")
    vm = VersionManager()
    vm.fresh("region")
    try:
        vm.assert_unused("region", 0)
        raise SystemExit("version manager failed to refuse reuse")
    except VersionReuseError as exc:
        print(f"   VersionReuseError: {exc}")

    # 3 -- malicious computation ---------------------------------------------------
    device.tamper_results(1)
    try:
        processor.weighted_row_sum(device, "secret", [0, 1], [1, 1])
        check("malicious NDP result", False)
    except VerificationError:
        check("malicious NDP result", True)
    device.behave_honestly()

    # 4 -- memory tampering ---------------------------------------------------------
    device.corrupt_stored_ciphertext("secret", 1, 3, delta=1)
    try:
        processor.weighted_row_sum(device, "secret", [0, 1], [1, 1])
        check("stored-ciphertext bit flip", False)
    except VerificationError:
        check("stored-ciphertext bit flip", True)

    # 5 -- tag replay ------------------------------------------------------------------
    enc2 = processor.encrypt_matrix(secret, 0x40000, "fresh", with_tags=True)
    device.store("fresh", enc2)
    stale_tag = enc2.tags[0]
    device.corrupt_stored_ciphertext("fresh", 0, 0, delta=7)
    device.replay_stored_tag("fresh", 0, stale_tag)
    try:
        processor.weighted_row_sum(device, "fresh", [0], [1])
        check("stale-tag replay", False)
    except VerificationError:
        check("stale-tag replay", True)

    # 6 -- forgery probability is ~m/q ----------------------------------------------
    q = 251
    oracles = WeightedSummationOracles(
        b"tee-master-key-0", rows=[0, 1], weights=[1, 1],
        params=SecNDPParams(element_bits=32, tag_modulus=q),
    )
    rng = np.random.default_rng(0)
    matrix = rng.integers(0, 1000, size=(4, 4), dtype=np.uint64).astype(np.uint32)
    transcript = oracles.sign(matrix, 0x1000)
    forged = transcript.with_c_res(0, (transcript.c_res[0] + 9) % (1 << 32))
    wins = sum(1 for guess in range(q) if oracles.verify(forged.with_tag(guess)))
    print(f"6. brute-forcing the tag over all of GF({q}): {wins}/{q} guesses "
          f"verify (exactly one - success probability 1/q without s, vs the "
          f"2^-127 of the real field)")
    assert wins == 1

    print("threat_demo OK")


if __name__ == "__main__":
    main()
