#!/usr/bin/env python
"""SecNDP over near-storage NDP (SmartSSD / RecSSD-class hardware).

The paper claims SecNDP "can be applied to any TEE ... and work with any
untrusted near-memory or near-storage processing hardware" (Sec. V).
This example exercises that generality end to end:

* functionally - the exact same ciphertext, tags and protocol serve a
  "drive-side" device object (the scheme never references DRAM);
* architecturally - the SSD timing model shows pooling inside the drive
  beating the pull-everything-over-NVMe host baseline, and that a single
  host AES engine keeps up with SSD-class bandwidth (versus ~10 engines
  for 8-rank DRAM NDP).

Run:  python examples/near_storage.py
"""

import numpy as np

from repro.analysis import BandwidthModel
from repro.core import (
    SecNDPParams,
    SecNDPProcessor,
    UntrustedNdpDevice,
    deserialize_matrix,
    serialize_matrix,
)
from repro.ndp import (
    AesEngineModel,
    NdpWorkload,
    NearStorageSimulator,
    SimQuery,
    SsdGeometry,
    TableGeometry,
)


def main() -> None:
    # -- functional: the protocol does not care where ciphertext lives ---------
    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(key=b"near-storage-key", params=params)

    table = np.random.default_rng(1).integers(0, 1000, (256, 32)).astype(np.uint32)
    enc = processor.encrypt_matrix(table, 0x4000, "cold-tier", with_tags=True)

    # Ship the container to the drive (serialization = what lands on flash).
    blob = serialize_matrix(enc)
    print(f"encrypted container: {len(blob)} bytes "
          f"({enc.n_rows} rows + {len(enc.tags)} tags)")

    drive = UntrustedNdpDevice(params)  # the SSD controller's view
    drive.store("cold-tier", deserialize_matrix(blob, params))

    rows, weights = [7, 99, 200], [1, 2, 1]
    res = processor.weighted_row_sum(drive, "cold-tier", rows, weights)
    expected = (np.array(weights)[:, None] * table[rows].astype(np.int64)).sum(axis=0)
    assert np.array_equal(res.values.astype(np.int64), expected)
    print("verified in-drive pooling matches plaintext")

    # -- architectural: drive-side pooling vs NVMe host baseline -----------------
    rng = np.random.default_rng(2)
    workload = NdpWorkload(
        tables={0: TableGeometry(n_rows=500_000, row_bytes=128, result_bytes=128)},
        queries=tuple(
            SimQuery(0, tuple(int(x) for x in rng.integers(0, 500_000, size=400)))
            for _ in range(32)
        ),
    )
    result = NearStorageSimulator(SsdGeometry()).run(workload)
    one_engine = AesEngineModel(1)
    print(f"host baseline: {result.host_us / 1e3:.2f} ms "
          f"({result.pages_read} pages over NVMe)")
    print(f"near-storage NDP: {result.ndp_us / 1e3:.2f} ms "
          f"-> {result.ndp_speedup:.2f}x")
    print(f"SecNDP (1 AES engine): {result.secndp_us(one_engine) / 1e3:.2f} ms "
          f"-> {result.secndp_speedup(one_engine):.2f}x "
          f"(no engine provisioning needed at SSD bandwidth)")

    dram_engines = BandwidthModel().engines_for_burst_mode(8)
    print(f"compare: 8-rank DRAM NDP needs ~{dram_engines} engines in burst mode")
    assert result.secndp_speedup(one_engine) > 1.5

    print("near_storage OK")


if __name__ == "__main__":
    main()
