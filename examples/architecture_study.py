#!/usr/bin/env python
"""Architectural design-space tour of the SecNDP engine.

Answers, with the cycle-level simulator, the sizing questions Sec. V/VII
raise: how many AES engines does a given NDP configuration need, what do
the verification-tag placements cost, and what does the engine cost in
silicon?  This is the "ablation" companion to the paper's Figures 7-10.

Run:  python examples/architecture_study.py
"""

import numpy as np

from repro.analysis import AreaModel, normalized_table5
from repro.baselines import run_non_ndp
from repro.errors import ConfigurationError
from repro.ndp import (
    AesEngineModel,
    NdpConfig,
    NdpSimulator,
    NdpWorkload,
    SimQuery,
    TableGeometry,
    TagScheme,
)


def make_workload(n_queries=48, pf=80, n_rows=100_000):
    rng = np.random.default_rng(3)
    tables = {0: TableGeometry(n_rows, row_bytes=128, result_bytes=128)}
    queries = tuple(
        SimQuery(0, tuple(int(x) for x in rng.integers(0, n_rows, size=pf)))
        for _ in range(n_queries)
    )
    return NdpWorkload(tables=tables, queries=queries)


def main() -> None:
    workload = make_workload()
    base_ns = run_non_ndp(workload).total_ns

    # -- 1. AES engines needed per NDP_rank -------------------------------------
    print("AES engines needed to stop being decryption-bound, per NDP_rank:")
    for ranks in (1, 2, 4, 8):
        run = NdpSimulator(NdpConfig(ranks, ranks)).run(workload)
        needed = next(
            n
            for n in range(1, 33)
            if run.decryption_bound_fraction(AesEngineModel(n)) < 0.05
        )
        speedup = base_ns / run.secndp_ns(AesEngineModel(needed))
        print(f"  NDP_rank={ranks}: {needed:2d} engines -> {speedup:.2f}x speedup")

    # -- 2. verification scheme costs ---------------------------------------------
    print("\nverification-tag placement cost (rank=8, reg=8, 12 engines):")
    aes = AesEngineModel(12)
    enc_ns = None
    for scheme in TagScheme:
        try:
            run = NdpSimulator(NdpConfig(8, 8, tag_scheme=scheme)).run(workload)
        except ConfigurationError as exc:
            print(f"  {scheme.value:10s}: infeasible ({exc})")
            continue
        ns = run.secndp_ns(aes)
        if scheme is TagScheme.ENC_ONLY:
            enc_ns = ns
        overhead = (ns / enc_ns - 1) * 100 if enc_ns else 0.0
        print(f"  {scheme.value:10s}: {ns / 1e3:9.1f} us  (+{overhead:.0f}% vs Enc-only)")

    # -- 3. register pressure ---------------------------------------------------------
    print("\nregister-count sweep at NDP_rank=8 (packet-level load balance):")
    for regs in (1, 2, 4, 8, 16):
        run = NdpSimulator(NdpConfig(8, regs)).run(workload)
        print(f"  NDP_reg={regs:2d}: {run.ndp_only_ns / 1e3:8.1f} us over "
              f"{len(run.records)} packets")

    # -- 4. silicon + energy budget ------------------------------------------------------
    area = AreaModel()
    print("\nSecNDP engine area (45 nm):")
    for engines in (4, 10, 16):
        print(f"  {engines:2d} AES engines: {area.total_mm2(engines):.3f} mm^2")
    norm = normalized_table5(pf=80)
    print("\nmemory-energy bottom line (PF=80, vs unprotected non-NDP):")
    for name, pct in norm.items():
        print(f"  {name:22s} {pct:6.2f}%")

    print("\narchitecture_study OK")


if __name__ == "__main__":
    main()
