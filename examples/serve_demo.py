#!/usr/bin/env python
"""Serving front-end demo: coalescing, admission control, typed errors.

Walks the asyncio serving stack of DESIGN.md Sec. 15 end to end:

1. build a secure embedding store and spin up an :class:`SlsServer` on
   an ephemeral TCP port;
2. fire a burst of concurrent SLS queries from pipelined clients — the
   batching scheduler coalesces them into a handful of amortized
   ``sls_many`` calls, and every answer is bit-identical to a direct
   ``store.sls`` call;
3. overload a deliberately tiny admission queue and catch the typed
   ``OverloadedError`` shed responses;
4. drain gracefully and read the scheduler's stats.

Run:  python examples/serve_demo.py
"""

import asyncio

import numpy as np

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import OverloadedError
from repro.serve import (
    AdmissionConfig,
    AsyncSlsClient,
    BatchScheduler,
    SlsServer,
)
from repro.workloads.secure_sls import SecureEmbeddingStore


def build_store(n_rows: int = 512, dim: int = 32) -> SecureEmbeddingStore:
    params = SecNDPParams(element_bits=32)
    store = SecureEmbeddingStore(
        SecNDPProcessor(b"0123456789abcdef", params),
        UntrustedNdpDevice(params),
        quantization="table",
    )
    rng = np.random.default_rng(7)
    store.add_table("emb", rng.normal(size=(n_rows, dim)))
    return store


async def serve_burst(store: SecureEmbeddingStore) -> None:
    rng = np.random.default_rng(11)
    queries = [[int(r) for r in rng.integers(0, 512, size=8)] for _ in range(48)]
    expected = np.asarray([store.sls("emb", q) for q in queries])

    async with SlsServer(store, port=0, max_batch=16) as server:
        print(f"server listening on 127.0.0.1:{server.port}")
        clients = [
            await AsyncSlsClient.connect("127.0.0.1", server.port) for _ in range(3)
        ]
        try:
            results = await asyncio.gather(
                *[clients[i % 3].sls("emb", q) for i, q in enumerate(queries)]
            )
        finally:
            for client in clients:
                await client.close()
        stats = server.stats()

    assert np.array_equal(np.asarray(results), expected)
    print(
        f"served {len(queries)} concurrent queries in {stats['batches']:.0f} "
        f"coalesced batches (mean fill {stats['mean_batch_fill']:.1f}, "
        f"dedupe {stats.get('dedupe_ratio', 1.0):.2f}) — bit-identical to "
        f"direct sls"
    )


async def overload_burst(store: SecureEmbeddingStore) -> None:
    scheduler = BatchScheduler(
        store, max_batch=4, admission=AdmissionConfig(max_queue=4)
    )
    client = AsyncSlsClient.in_process(scheduler)
    results = await asyncio.gather(
        *[client.sls("emb", [i % 16]) for i in range(40)], return_exceptions=True
    )
    await scheduler.close()
    served = sum(1 for r in results if isinstance(r, np.ndarray))
    shed = sum(1 for r in results if isinstance(r, OverloadedError))
    assert shed > 0 and served + shed == len(results)
    print(
        f"overload burst of {len(results)}: {served} served, {shed} shed with "
        f"typed OverloadedError (queue cap 4)"
    )


def main() -> None:
    store = build_store()
    asyncio.run(serve_burst(store))
    asyncio.run(overload_burst(store))
    print("OK")


if __name__ == "__main__":
    main()
