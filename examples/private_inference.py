#!/usr/bin/env python
"""Private-model MLP inference: IP-protected weights in untrusted memory.

The paper's introduction motivates SecNDP with "machine learning
inference using private models (e.g., models that need IP protection or
may reveal the private training dataset)".  This example serves exactly
that scenario with the :class:`~repro.workloads.private_mlp.PrivateMlp`
API: a small classifier's weight matrices live arithmetically encrypted
in untrusted memory, every layer's GEMV runs as verified weighted row
summations over ciphertext, and a model-stealing memory dump gets
nothing.

Run:  python examples/private_inference.py
"""

import numpy as np

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.errors import VerificationError
from repro.workloads import PrivateMlp


def make_classifier(rng):
    """A 2-class classifier separating two Gaussian blobs."""
    w1 = rng.normal(0, 0.6, size=(8, 24))
    b1 = rng.normal(0, 0.05, size=24)
    w2 = rng.normal(0, 0.6, size=(24, 2))
    return (w1, b1), (w2, None)


def main() -> None:
    rng = np.random.default_rng(21)
    (w1, b1), (w2, _) = make_classifier(rng)

    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(key=b"model-owner-key!", params=params)
    device = UntrustedNdpDevice(params)

    mlp = PrivateMlp(processor, device, quantization="column")
    mlp.add_layer(w1, b1)
    mlp.add_layer(w2)
    print("2-layer MLP loaded: weights encrypted + tagged in untrusted memory")

    # -- the memory side cannot read the model ---------------------------------
    stolen = device.stored("layer0").ciphertext
    corr = np.corrcoef(
        stolen.reshape(-1).astype(np.float64)[: w1.size], w1.reshape(-1)
    )[0, 1]
    print(f"model-stealing dump: |corr(ciphertext, weights)| = {abs(corr):.4f}")
    assert abs(corr) < 0.15

    # -- inference through the drive matches the float model --------------------
    x_batch = rng.normal(0, 1, size=(8, 8))
    max_err = 0.0
    agreements = 0
    for x in x_batch:
        secure = mlp.forward(x)
        ref = np.maximum(x @ w1 + b1, 0) @ w2
        max_err = max(max_err, float(np.max(np.abs(secure - ref))))
        agreements += int(np.argmax(secure) == np.argmax(ref))
    print(f"secure vs float logits: max |err| = {max_err:.3f}, "
          f"argmax agreement {agreements}/8")
    assert agreements == 8

    # -- weight tampering is caught before any wrong answer escapes -------------
    device.corrupt_stored_ciphertext("layer1", 3, 0, delta=9)
    try:
        mlp.forward(x_batch[0])
        raise SystemExit("tampered weights were NOT detected")
    except VerificationError:
        print("tampered layer-1 weights detected by the verification tag")

    print("private_inference OK")


if __name__ == "__main__":
    main()
