#!/usr/bin/env python
"""Secure DLRM inference: embedding lookups offloaded through SecNDP.

Reproduces the paper's primary use case (Sec. VI-A (1)): the MLPs of a
recommendation model run on the trusted CPU while the bandwidth-hungry
SparseLengthsWeightedSum over private embedding tables is offloaded to
untrusted NDP, under 8-bit table-wise quantization (the scheme the paper
proposes so pooling can run directly over ciphertext).

The script checks end-to-end that predictions through the secure path
match the quantized plaintext model exactly, then reports the predicted
architectural speedup of the offload from the cycle-level simulator.

Run:  python examples/dlrm_inference.py
"""

import numpy as np

from repro.baselines import run_non_ndp, run_unprotected_ndp
from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.ndp import AesEngineModel, NdpConfig, NdpSimulator, TagScheme
from repro.workloads import (
    DlrmConfig,
    DlrmModel,
    TablewiseQuantizer,
    click_dataset,
    random_trace,
    sls_workload,
)

KEY = b"secret-dlrm-key!"
BATCH = 8


def secure_pooled_embeddings(model, processor, device, quantizers, sparse_rows):
    """Pool every (sample, table) lookup through the SecNDP protocol."""
    cfg = model.config
    pooled = np.zeros((len(sparse_rows), cfg.n_tables, cfg.embedding_dim))
    for s, per_table in enumerate(sparse_rows):
        for t, rows in enumerate(per_table):
            weights = [1] * len(rows)
            res = processor.weighted_row_sum(
                device, f"table{t}", rows, weights, verify=True
            )
            scale, bias = quantizers[t]
            pooled[s, t] = res.values.astype(np.float64) * scale + bias * len(rows)
    return pooled


def main() -> None:
    # -- a small DLRM + synthetic CTR traffic ---------------------------------
    config = DlrmConfig(
        "demo", (16, 32, 8), (64, 32, 1), n_tables=4, rows_per_table=256,
        embedding_dim=8,
    )
    model = DlrmModel(config, seed=0)
    data = click_dataset(BATCH, config.n_tables, config.rows_per_table,
                         dense_dim=16, seed=0)

    # -- quantize tables (8-bit table-wise) and encrypt them ------------------
    params = SecNDPParams(element_bits=32)  # pooled sums stay in 32-bit ring
    processor = SecNDPProcessor(KEY, params)
    device = UntrustedNdpDevice(params)
    tw = TablewiseQuantizer()
    quantizers = []
    addr = 0x10_0000
    for t, table in enumerate(model.tables):
        q, scale, bias = tw.quantize(table.values)
        enc = processor.encrypt_matrix(
            q.astype(np.uint32), addr, f"table{t}", with_tags=True
        )
        device.store(f"table{t}", enc)
        quantizers.append((scale, bias))
        addr += 2 * q.size * 4

    # -- secure inference ------------------------------------------------------
    pooled_secure = secure_pooled_embeddings(
        model, processor, device, quantizers, data.sparse_rows
    )
    pred_secure = model.forward(
        data.dense, data.sparse_rows, pooled_override=pooled_secure
    )

    # -- reference: quantized plaintext pooling --------------------------------
    pooled_plain = np.zeros_like(pooled_secure)
    for s, per_table in enumerate(data.sparse_rows):
        for t, rows in enumerate(per_table):
            q, scale, bias = tw.quantize(model.tables[t].values)
            pooled_plain[s, t] = (
                q[rows].astype(np.float64).sum(axis=0) * scale + bias * len(rows)
            )
    pred_plain = model.forward(
        data.dense, data.sparse_rows, pooled_override=pooled_plain
    )

    assert np.allclose(pred_secure, pred_plain), "secure path diverged!"
    print(f"secure predictions match quantized plaintext for all {BATCH} samples")
    print("  first three CTR estimates:", np.round(pred_secure[:3], 4).tolist())

    # -- architectural speedup of the offload ----------------------------------
    scaled = config.scaled(50_000)
    traces = [random_trace(50_000, 16, 80, seed=t) for t in range(4)]
    workload = sls_workload(scaled, traces, element_bytes=1, batch=16)
    base = run_non_ndp(workload)
    sec = NdpSimulator(
        NdpConfig(8, 8, tag_scheme=TagScheme.VER_COLOC)
    ).run(workload)
    secndp_ns = sec.secndp_ns(AesEngineModel(12))
    print(f"simulated SLS portion: non-NDP {base.total_ns / 1e3:.1f} us vs "
          f"SecNDP {secndp_ns / 1e3:.1f} us "
          f"({base.total_ns / secndp_ns:.2f}x speedup, 8 ranks, Ver-coloc)")
    print("dlrm_inference OK")


if __name__ == "__main__":
    main()
