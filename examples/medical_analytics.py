#!/usr/bin/env python
"""Private medical data analytics over untrusted NDP (paper Sec. VI-A (2)).

A gene-expression database (patients x genes) is stored encrypted; a
researcher submits patient-ID lists and the untrusted NDP computes group
summations over ciphertext.  From verified sums and sums-of-squares the
processor derives group means and Welch t-statistics - discovering which
genes are disease-associated without the memory side ever seeing a
single expression value.

Run:  python examples/medical_analytics.py
"""

import numpy as np

from repro.core import SecNDPParams, SecNDPProcessor, UntrustedNdpDevice
from repro.workloads import SecureGeneDatabase, gene_expression

N_PATIENTS = 300
N_GENES = 64


def main() -> None:
    data = gene_expression(
        N_PATIENTS, N_GENES, n_disease_genes=5, effect_size=2.0, seed=11
    )
    print(
        f"database: {data.n_patients} patients x {data.n_genes} genes, "
        f"{int(data.is_case.sum())} cases "
        f"(planted disease genes: {data.disease_genes.tolist()})"
    )

    params = SecNDPParams(element_bits=32)
    processor = SecNDPProcessor(key=b"hospital-tee-key", params=params)
    device = UntrustedNdpDevice(params)
    db = SecureGeneDatabase(data, processor, device, verify=True)

    # -- verified group means ---------------------------------------------------
    case_ids = np.flatnonzero(data.is_case)
    sums = db.group_sum(case_ids)
    means = sums / len(case_ids)
    plain_means = data.expression[case_ids].mean(axis=0)
    err = np.max(np.abs(means - plain_means))
    print(f"case-group means computed securely (max fixed-point error "
          f"{err:.4f})")

    # -- genome-wide t-test screen ----------------------------------------------
    hits = []
    for gene in range(N_GENES):
        result = db.t_test(gene)
        if result.significant_at_3sigma:
            hits.append((gene, round(result.t_statistic, 1)))
    found = {g for g, _ in hits}
    planted = set(data.disease_genes.tolist())
    print(f"significant genes (|t| > 3): {hits}")
    print(f"recovered {len(found & planted)}/{len(planted)} planted genes, "
          f"{len(found - planted)} false positives")
    assert len(found & planted) >= len(planted) - 1, "screen missed the signal"

    print("medical_analytics OK")


if __name__ == "__main__":
    main()
